//! Deterministic mid-run engine checkpoints: serialize a paused
//! [`EngineCore`] so a later process can resume it **bitwise** — same
//! remaining trace events, same final metrics, same artifacts.
//!
//! A checkpoint file is line-oriented: an [`ArtifactMeta`] header
//! (`kind = checkpoint`, carrying the cube shape, seed, and strategy wire
//! name), then one JSON object per state section, then an `end` marker so
//! truncated files are detected. Everything that steers the run is
//! captured explicitly: both RNG streams (traffic and fault injector) as
//! raw xoshiro words, the ground-truth and routing-view fault sets
//! (sorted — their in-memory form hashes nondeterministically), the
//! scheduled-but-unapplied fault operations, the full metrics block, the
//! live packet arena *including its freelist order* (slot allocation
//! order feeds packet service order), and each node's FIFO queue.
//!
//! What is *not* captured is anything derivable: the cube, the link
//! table, unicast plan caches, and per-cycle scratch are rebuilt from
//! the config — the cached and uncached strategy variants plan identical
//! routes, so a fresh walk cache is bitwise-safe. The collective
//! broadcast-tree cache is the exception: a regraft patches the
//! *previous* tree, so the cached shape (and the repair outcome the next
//! fault event reports) is history, not derivation — its entries are
//! captured and re-seeded on restore.
//!
//! The `trace_mark` field records how many trace events the run had
//! emitted at capture. Restoring into the session that wrote those events
//! truncates its sink back to the mark (rewind); restoring elsewhere
//! yields exactly the suffix `uninterrupted[mark..]`.

use std::collections::BTreeMap;

use gcube_routing::{BroadcastTree, FaultSet, HealthState, RepairOutcome, Route, TreeSnapshot};
use gcube_topology::{LinkId, NodeId, Topology};

use crate::artifact::{ArtifactKind, ArtifactMeta, ARTIFACT_FORMAT};
use crate::config::SimConfig;
use crate::engine::{EngineCore, Simulator};
use crate::injection::{FaultAction, FaultEvent, FaultKind, FaultTarget, PendingOp};
use crate::metrics::{Histogram, Metrics, OpStat, WindowStat, HIST_BUCKETS, MAX_TREES};
use crate::proto::{self, parse_json, JsonValue};
use crate::soa::{LinkTable, NodeQueues, PacketStore, NIL};
use crate::telemetry::{FaultBudgetMonitor, NullTelemetry};
use crate::trace::NullSink;

/// Every scalar `u64` counter of [`Metrics`], in serialization order.
/// Adding a field to `Metrics` without adding it here is caught by the
/// exhaustive-struct round-trip test below.
macro_rules! with_metric_fields {
    ($cb:ident, $($extra:tt)*) => {
        $cb!(
            $($extra)*;
            injected, delivered, total_latency, total_hops, route_failures,
            blocked_injections, suppressed_injections, in_flight_at_end,
            cycles, nodes, dropped, ttl_expired, dropped_stranded,
            dropped_unrecoverable, rerouted_packets, rerouted_hops,
            fault_events, forwarded_hops_total, health_transitions,
            stale_cycles, reconvergences, injected_total, delivered_total,
            dropped_total, route_failures_total, suppressed_injections_total,
            tree_switches, tree_exhausted, collective_ops, collective_skipped,
            collective_injected, collective_delivered, collective_dropped,
            tree_regrafts, tree_rebuilds, tree_lost_nodes
        )
    };
}

// --- small JSON helpers -------------------------------------------------

fn u64_arr(xs: impl IntoIterator<Item = u64>) -> String {
    let items: Vec<String> = xs.into_iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

fn field<'v>(v: &'v JsonValue, key: &str) -> Result<&'v JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn f_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be an integer"))
}

fn f_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} must be a boolean"))
}

fn f_str<'v>(v: &'v JsonValue, key: &str) -> Result<&'v str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

fn f_arr<'v>(v: &'v JsonValue, key: &str) -> Result<&'v [JsonValue], String> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} must be an array"))
}

fn elem_u64(v: &JsonValue) -> Result<u64, String> {
    v.as_u64().ok_or_else(|| "expected an integer".to_string())
}

fn u64s(items: &[JsonValue]) -> Result<Vec<u64>, String> {
    items.iter().map(elem_u64).collect()
}

fn rng_words(v: &JsonValue, key: &str) -> Result<[u64; 4], String> {
    let words = u64s(f_arr(v, key)?)?;
    words
        .try_into()
        .map_err(|_| format!("field {key:?} must hold exactly 4 RNG words"))
}

fn action_to_str(a: FaultAction) -> &'static str {
    match a {
        FaultAction::Fail => "fail",
        FaultAction::Repair => "repair",
    }
}

fn action_from_str(s: &str) -> Result<FaultAction, String> {
    match s {
        "fail" => Ok(FaultAction::Fail),
        "repair" => Ok(FaultAction::Repair),
        other => Err(format!("bad fault action {other:?}")),
    }
}

fn hist_to_json(h: &Histogram) -> String {
    format!(
        "{{\"buckets\":{},\"count\":{},\"max\":{}}}",
        u64_arr(h.buckets().iter().copied()),
        h.count(),
        h.max(),
    )
}

fn hist_from_json(v: &JsonValue) -> Result<Histogram, String> {
    let buckets: [u64; HIST_BUCKETS] = u64s(f_arr(v, "buckets")?)?
        .try_into()
        .map_err(|_| format!("histogram must hold exactly {HIST_BUCKETS} buckets"))?;
    Ok(Histogram::from_parts(
        buckets,
        f_u64(v, "count")?,
        f_u64(v, "max")?,
    ))
}

// --- fault-set / packet representations ---------------------------------

/// A fault set flattened to sorted, order-stable parts.
#[derive(Clone, Debug, PartialEq)]
struct FaultsRepr {
    nodes: Vec<u64>,
    links: Vec<(u64, u32)>,
    generation: u64,
}

impl FaultsRepr {
    fn capture(f: &FaultSet) -> FaultsRepr {
        let mut nodes: Vec<u64> = f.faulty_nodes().map(|v| v.0).collect();
        nodes.sort_unstable();
        let mut links: Vec<(u64, u32)> = f.faulty_links().map(|l| (l.lo.0, l.dim)).collect();
        links.sort_unstable();
        FaultsRepr {
            nodes,
            links,
            generation: f.generation(),
        }
    }

    fn to_json(&self) -> String {
        let links: Vec<String> = self
            .links
            .iter()
            .map(|(lo, dim)| format!("[{lo},{dim}]"))
            .collect();
        format!(
            "{{\"nodes\":{},\"links\":[{}],\"generation\":{}}}",
            u64_arr(self.nodes.iter().copied()),
            links.join(","),
            self.generation,
        )
    }

    fn from_json(v: &JsonValue) -> Result<FaultsRepr, String> {
        let mut links = Vec::new();
        for l in f_arr(v, "links")? {
            let pair = l.as_arr().ok_or("fault link must be [lo, dim]")?;
            let [lo, dim] = pair else {
                return Err("fault link must be [lo, dim]".into());
            };
            links.push((
                elem_u64(lo)?,
                u32::try_from(elem_u64(dim)?).map_err(|_| "link dim out of range")?,
            ));
        }
        Ok(FaultsRepr {
            nodes: u64s(f_arr(v, "nodes")?)?,
            links,
            generation: f_u64(v, "generation")?,
        })
    }

    fn rebuild(&self) -> FaultSet {
        FaultSet::from_parts(
            self.nodes.iter().map(|&v| NodeId(v)),
            self.links
                .iter()
                .map(|&(lo, dim)| LinkId::new(NodeId(lo), dim)),
            self.generation,
        )
    }
}

/// One cached collective broadcast tree, flattened for serialization.
/// The cached tree is *history*, not derivation: regrafting patches the
/// previous tree in place, so the current shape (and the repair outcome
/// the next fault event reports) depends on every generation the tree
/// lived through. `u64::MAX` in `parent` and `depth` marks uncovered
/// nodes.
#[derive(Clone, Debug, PartialEq)]
struct TreeRepr {
    class: u64,
    root: u64,
    generation: u64,
    regrafted: u64,
    reattached: u64,
    lost: u64,
    rebuilt: bool,
    parent: Vec<u64>,
    depth: Vec<u64>,
    order: Vec<u64>,
}

impl TreeRepr {
    fn capture(s: &TreeSnapshot) -> TreeRepr {
        TreeRepr {
            class: s.class,
            root: s.root.0,
            generation: s.generation,
            regrafted: s.repair.regrafted_subtrees,
            reattached: s.repair.reattached_nodes,
            lost: s.repair.lost_nodes,
            rebuilt: s.repair.rebuilt,
            parent: s
                .tree
                .parent
                .iter()
                .map(|p| p.map_or(u64::MAX, |v| v.0))
                .collect(),
            depth: s.tree.depth.iter().map(|&d| u64::from(d)).collect(),
            order: s.tree.order.iter().map(|v| v.0).collect(),
        }
    }

    fn rebuild(&self) -> Result<TreeSnapshot, String> {
        let depth = self
            .depth
            .iter()
            .map(|&d| u32::try_from(d))
            .collect::<Result<Vec<u32>, _>>()
            .map_err(|_| "tree depth out of range".to_string())?;
        Ok(TreeSnapshot {
            class: self.class,
            root: NodeId(self.root),
            generation: self.generation,
            repair: RepairOutcome {
                regrafted_subtrees: self.regrafted,
                reattached_nodes: self.reattached,
                lost_nodes: self.lost,
                rebuilt: self.rebuilt,
            },
            tree: BroadcastTree {
                root: NodeId(self.root),
                parent: self
                    .parent
                    .iter()
                    .map(|&p| (p != u64::MAX).then_some(NodeId(p)))
                    .collect(),
                depth,
                order: self.order.iter().map(|&v| NodeId(v)).collect(),
            },
        })
    }
}

/// One in-flight packet: its arena slot and every per-packet column.
#[derive(Clone, Debug, PartialEq)]
struct LivePacket {
    slot: u32,
    id: u64,
    injected_at: u64,
    hop_idx: u32,
    hops_taken: u32,
    planned_hops: u32,
    reroutes: u32,
    route: Vec<u64>,
}

// --- the checkpoint -----------------------------------------------------

/// A serialized engine state, restorable bitwise. Build one with
/// [`Checkpoint::capture`] (or [`crate::session::Stepper::checkpoint`]),
/// persist with [`Checkpoint::to_text`] / [`Checkpoint::from_text`], and
/// resume via [`crate::session::SimSession::stepper_from`].
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    config: SimConfig,
    strategy: String,
    trees: usize,
    trace_mark: u64,
    cycle: u64,
    done: bool,
    ended_at: u64,
    next_id: u64,
    in_flight: u64,
    converge_at: Option<u64>,
    synced: (u64, u64),
    traffic_rng: [u64; 4],
    injector_rng: [u64; 4],
    monitor_state: HealthState,
    monitor_downgraded: bool,
    truth: FaultsRepr,
    view: FaultsRepr,
    pending: Vec<(u64, FaultAction, FaultTarget, FaultKind)>,
    fault_trace: Vec<FaultEvent>,
    metrics: Metrics,
    windows: Vec<WindowStat>,
    arena: usize,
    free: Vec<u32>,
    live: Vec<LivePacket>,
    queues: Vec<(u64, Vec<u32>)>,
    ledger: Vec<Option<(NodeId, u64)>>,
    ops: Vec<OpStat>,
    tree_cache: Vec<TreeRepr>,
}

impl Checkpoint {
    /// Snapshot a paused engine. `trace_mark` is how many trace events the
    /// run's sink holds at this instant (0 for untraced runs). Fails for
    /// strategies without a wire identity (the e-cube baseline).
    pub(crate) fn capture(
        sim: &Simulator,
        core: &EngineCore,
        trace_mark: u64,
    ) -> Result<Checkpoint, String> {
        let (strategy, trees) = sim.algorithm().wire_spec().ok_or_else(|| {
            format!(
                "strategy {:?} has no wire identity and cannot be checkpointed",
                sim.algorithm().name()
            )
        })?;

        // Live packets: every arena slot not on the freelist.
        let arena = core.store.id.len();
        let mut is_free = vec![false; arena];
        for &s in &core.store.free {
            is_free[s as usize] = true;
        }
        let mut live = Vec::with_capacity(core.in_flight as usize);
        for (slot, free) in is_free.iter().enumerate() {
            if *free {
                continue;
            }
            let route = core.store.routes[slot]
                .as_ref()
                .ok_or_else(|| format!("live packet in slot {slot} has no route"))?;
            live.push(LivePacket {
                slot: slot as u32,
                id: core.store.id[slot],
                injected_at: core.store.injected_at[slot],
                hop_idx: core.store.hop_idx[slot],
                hops_taken: core.store.hops_taken[slot],
                planned_hops: core.store.planned_hops[slot],
                reroutes: core.store.reroutes[slot],
                route: route.nodes().iter().map(|v| v.0).collect(),
            });
        }

        // Per-node FIFO order, front to back, non-empty queues only.
        let n_nodes = sim.cube().num_nodes();
        let mut queues = Vec::new();
        for v in 0..n_nodes as usize {
            let len = core.queues.len(v);
            if len == 0 {
                continue;
            }
            let mut slots = Vec::with_capacity(len);
            let mut s = core.queues.front(v).expect("non-empty queue has a front");
            loop {
                slots.push(s);
                match core.store.next[s as usize] {
                    NIL => break,
                    nxt => s = nxt,
                }
            }
            if slots.len() != len {
                return Err(format!("queue {v} chain length mismatch"));
            }
            queues.push((v as u64, slots));
        }

        let mut pending = Vec::new();
        for (&cycle, ops) in core.injector.pending() {
            for op in ops {
                pending.push((cycle, op.action, op.target, op.kind));
            }
        }

        Ok(Checkpoint {
            config: sim.config().clone(),
            strategy: strategy.to_string(),
            trees,
            trace_mark,
            cycle: core.cycle,
            done: core.done,
            ended_at: core.ended_at,
            next_id: core.next_id,
            in_flight: core.in_flight,
            converge_at: core.converge_at,
            synced: core.synced,
            traffic_rng: core.traffic.rng_state(),
            injector_rng: core.injector.rng_state(),
            monitor_state: core.monitor.state(),
            monitor_downgraded: core.monitor.downgraded(),
            truth: FaultsRepr::capture(&core.truth),
            view: FaultsRepr::capture(&core.view),
            pending,
            fault_trace: core.injector.trace().to_vec(),
            metrics: core.metrics,
            windows: core.windows.clone(),
            arena,
            free: core.store.free.clone(),
            live,
            queues,
            ledger: core.repair_ledger.last().to_vec(),
            ops: core.op_tracker.ops().to_vec(),
            tree_cache: core
                .collective
                .as_ref()
                .map(|cp| {
                    cp.cache()
                        .tree_snapshots()
                        .iter()
                        .map(TreeRepr::capture)
                        .collect()
                })
                .unwrap_or_default(),
        })
    }

    /// The run configuration the checkpoint was taken under.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Strategy wire name ([`crate::strategy::build_strategy`] accepts it).
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// Spanning trees per bundle (0 for single-tree strategies).
    pub fn trees(&self) -> usize {
        self.trees
    }

    /// The next cycle the restored engine will execute.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Trace events emitted before capture (see module docs).
    pub fn trace_mark(&self) -> u64 {
        self.trace_mark
    }

    /// The provenance header a checkpoint file is stamped with.
    pub fn meta(&self) -> ArtifactMeta {
        ArtifactMeta {
            kind: ArtifactKind::Checkpoint,
            format: ARTIFACT_FORMAT,
            n: u64::from(self.config.n),
            modulus: self.config.modulus,
            seed: self.config.seed,
            threads: 1,
            strategy: self.strategy.clone(),
        }
    }

    // -- serialization ---------------------------------------------------

    /// Render the checkpoint as its line-oriented text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.meta().to_jsonl_line());
        out.push('\n');

        out.push_str(&format!(
            "{{\"section\":\"run\",\"strategy\":{},\"trees\":{},\"trace_mark\":{},\
             \"config\":{}}}\n",
            proto::quote(&self.strategy),
            self.trees,
            self.trace_mark,
            proto::config_to_json(&self.config),
        ));

        out.push_str(&format!(
            "{{\"section\":\"core\",\"cycle\":{},\"done\":{},\"ended_at\":{},\
             \"next_id\":{},\"in_flight\":{},\"converge_at\":{},\
             \"synced\":[{},{}],\"traffic_rng\":{},\"injector_rng\":{},\
             \"monitor_state\":{},\"monitor_downgraded\":{}}}\n",
            self.cycle,
            self.done,
            self.ended_at,
            self.next_id,
            self.in_flight,
            self.converge_at
                .map_or("null".to_string(), |c| c.to_string()),
            self.synced.0,
            self.synced.1,
            u64_arr(self.traffic_rng),
            u64_arr(self.injector_rng),
            proto::quote(self.monitor_state.as_str()),
            self.monitor_downgraded,
        ));

        out.push_str(&format!(
            "{{\"section\":\"faults\",\"truth\":{},\"view\":{}}}\n",
            self.truth.to_json(),
            self.view.to_json(),
        ));

        let pending: Vec<String> = self
            .pending
            .iter()
            .map(|(cycle, action, target, kind)| {
                format!(
                    "{{\"cycle\":{cycle},\"action\":{},\"target\":{},\"kind\":{}}}",
                    proto::quote(action_to_str(*action)),
                    proto::quote(&proto::target_to_str(*target)),
                    proto::quote(&proto::kind_to_str(*kind)),
                )
            })
            .collect();
        let applied: Vec<String> = self
            .fault_trace
            .iter()
            .map(|e| {
                format!(
                    "{{\"cycle\":{},\"action\":{},\"target\":{}}}",
                    e.cycle,
                    proto::quote(action_to_str(e.action)),
                    proto::quote(&proto::target_to_str(e.target)),
                )
            })
            .collect();
        out.push_str(&format!(
            "{{\"section\":\"injector\",\"pending\":[{}],\"applied\":[{}]}}\n",
            pending.join(","),
            applied.join(","),
        ));

        let mut parts: Vec<String> = Vec::new();
        macro_rules! put {
            ($m:expr; $($f:ident),*) => {
                $( parts.push(format!("\"{}\":{}", stringify!($f), $m.$f)); )*
            };
        }
        with_metric_fields!(put, &self.metrics);
        parts.push(format!(
            "\"tree_routes\":{}",
            u64_arr(self.metrics.tree_routes)
        ));
        parts.push(format!(
            "\"latency_hist\":{}",
            hist_to_json(&self.metrics.latency_hist)
        ));
        parts.push(format!(
            "\"hops_hist\":{}",
            hist_to_json(&self.metrics.hops_hist)
        ));
        out.push_str(&format!(
            "{{\"section\":\"metrics\",{}}}\n",
            parts.join(","),
        ));

        let windows: Vec<String> = self
            .windows
            .iter()
            .map(|w| {
                format!(
                    "[{},{},{},{},{},{},{}]",
                    w.start,
                    w.end,
                    w.injected,
                    w.delivered,
                    w.dropped,
                    w.tree_switches,
                    w.collective_delivered,
                )
            })
            .collect();
        out.push_str(&format!(
            "{{\"section\":\"windows\",\"items\":[{}]}}\n",
            windows.join(","),
        ));

        let live: Vec<String> = self
            .live
            .iter()
            .map(|p| {
                format!(
                    "[{},{},{},{},{},{},{},{}]",
                    p.slot,
                    p.id,
                    p.injected_at,
                    p.hop_idx,
                    p.hops_taken,
                    p.planned_hops,
                    p.reroutes,
                    u64_arr(p.route.iter().copied()),
                )
            })
            .collect();
        out.push_str(&format!(
            "{{\"section\":\"packets\",\"arena\":{},\"free\":{},\"live\":[{}]}}\n",
            self.arena,
            u64_arr(self.free.iter().map(|&s| u64::from(s))),
            live.join(","),
        ));

        let queues: Vec<String> = self
            .queues
            .iter()
            .map(|(v, slots)| format!("[{v},{}]", u64_arr(slots.iter().map(|&s| u64::from(s)))))
            .collect();
        out.push_str(&format!(
            "{{\"section\":\"queues\",\"items\":[{}]}}\n",
            queues.join(","),
        ));

        let ledger: Vec<String> = self
            .ledger
            .iter()
            .map(|e| match e {
                None => "null".to_string(),
                Some((v, cycle)) => format!("[{},{cycle}]", v.0),
            })
            .collect();
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|o| {
                format!(
                    "[{},{},{},{},{},{},{}]",
                    o.op, o.root, o.started, o.expected, o.delivered, o.dropped, o.last_delivery,
                )
            })
            .collect();
        let trees: Vec<String> = self
            .tree_cache
            .iter()
            .map(|t| {
                format!(
                    "{{\"class\":{},\"root\":{},\"generation\":{},\"regrafted\":{},\
                     \"reattached\":{},\"lost\":{},\"rebuilt\":{},\"parent\":{},\
                     \"depth\":{},\"order\":{}}}",
                    t.class,
                    t.root,
                    t.generation,
                    t.regrafted,
                    t.reattached,
                    t.lost,
                    t.rebuilt,
                    u64_arr(t.parent.iter().copied()),
                    u64_arr(t.depth.iter().copied()),
                    u64_arr(t.order.iter().copied()),
                )
            })
            .collect();
        out.push_str(&format!(
            "{{\"section\":\"collective\",\"ledger\":[{}],\"ops\":[{}],\"trees\":[{}]}}\n",
            ledger.join(","),
            ops.join(","),
            trees.join(","),
        ));

        out.push_str("{\"section\":\"end\"}\n");
        out
    }

    /// Parse a checkpoint file produced by [`Checkpoint::to_text`].
    pub fn from_text(text: &str) -> Result<Checkpoint, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty checkpoint file")?;
        let meta = ArtifactMeta::parse(header)
            .ok_or("checkpoint file has no meta header")?
            .map_err(|e| format!("bad checkpoint header: {e}"))?;
        if meta.kind != ArtifactKind::Checkpoint {
            return Err(format!(
                "artifact is a {} stream, not a checkpoint",
                meta.kind
            ));
        }

        let mut run = None;
        let mut core = None;
        let mut faults = None;
        let mut injector = None;
        let mut metrics = None;
        let mut windows = None;
        let mut packets = None;
        let mut queues = None;
        let mut collective = None;
        let mut ended = false;
        for line in lines {
            if ended {
                return Err("data after the end marker".into());
            }
            let v = parse_json(line)?;
            match f_str(&v, "section")? {
                "run" => run = Some(v),
                "core" => core = Some(v),
                "faults" => faults = Some(v),
                "injector" => injector = Some(v),
                "metrics" => metrics = Some(v),
                "windows" => windows = Some(v),
                "packets" => packets = Some(v),
                "queues" => queues = Some(v),
                "collective" => collective = Some(v),
                "end" => ended = true,
                other => return Err(format!("unknown checkpoint section {other:?}")),
            }
        }
        if !ended {
            return Err("checkpoint file is truncated (no end marker)".into());
        }
        let need = |name: &str, v: Option<JsonValue>| {
            v.ok_or_else(|| format!("checkpoint missing section {name:?}"))
        };
        let run = need("run", run)?;
        let core = need("core", core)?;
        let faults = need("faults", faults)?;
        let injector = need("injector", injector)?;
        let metrics_v = need("metrics", metrics)?;
        let windows = need("windows", windows)?;
        let packets = need("packets", packets)?;
        let queues = need("queues", queues)?;
        let collective = need("collective", collective)?;

        let config = proto::config_from_json(field(&run, "config")?)?;
        let strategy = f_str(&run, "strategy")?.to_string();
        if (
            u64::from(config.n),
            config.modulus,
            config.seed,
            strategy.as_str(),
        ) != (meta.n, meta.modulus, meta.seed, meta.strategy.as_str())
        {
            return Err("checkpoint header disagrees with its run section".into());
        }

        let synced = match f_arr(&core, "synced")? {
            [a, b] => (elem_u64(a)?, elem_u64(b)?),
            _ => return Err("field \"synced\" must be [truth_gen, view_gen]".into()),
        };
        let converge_at = match field(&core, "converge_at")? {
            JsonValue::Null => None,
            f => Some(
                f.as_u64()
                    .ok_or("field \"converge_at\" must be an integer or null")?,
            ),
        };
        let monitor_state =
            HealthState::from_str(f_str(&core, "monitor_state")?).ok_or("bad monitor_state")?;

        let mut pending = Vec::new();
        for p in f_arr(&injector, "pending")? {
            pending.push((
                f_u64(p, "cycle")?,
                action_from_str(f_str(p, "action")?)?,
                proto::target_from_str(f_str(p, "target")?)?,
                proto::kind_from_str(f_str(p, "kind")?)?,
            ));
        }
        let mut fault_trace = Vec::new();
        for e in f_arr(&injector, "applied")? {
            fault_trace.push(FaultEvent {
                cycle: f_u64(e, "cycle")?,
                action: action_from_str(f_str(e, "action")?)?,
                target: proto::target_from_str(f_str(e, "target")?)?,
            });
        }

        let mut m = Metrics::default();
        macro_rules! get {
            ($v:expr; $($f:ident),*) => {
                $( m.$f = f_u64($v, stringify!($f))?; )*
            };
        }
        with_metric_fields!(get, &metrics_v);
        m.tree_routes = u64s(f_arr(&metrics_v, "tree_routes")?)?
            .try_into()
            .map_err(|_| format!("tree_routes must hold exactly {MAX_TREES} counters"))?;
        m.latency_hist = hist_from_json(field(&metrics_v, "latency_hist")?)?;
        m.hops_hist = hist_from_json(field(&metrics_v, "hops_hist")?)?;

        let mut window_stats = Vec::new();
        for w in f_arr(&windows, "items")? {
            let cols = u64s(w.as_arr().ok_or("window entry must be an array")?)?;
            let [start, end, injected, delivered, dropped, tree_switches, collective_delivered] =
                cols[..]
            else {
                return Err("window entry must hold 7 counters".into());
            };
            window_stats.push(WindowStat {
                start,
                end,
                injected,
                delivered,
                dropped,
                tree_switches,
                collective_delivered,
            });
        }

        let arena = f_u64(&packets, "arena")? as usize;
        let to_u32 = |x: u64| u32::try_from(x).map_err(|_| "slot out of u32 range".to_string());
        let free = u64s(f_arr(&packets, "free")?)?
            .into_iter()
            .map(to_u32)
            .collect::<Result<Vec<u32>, String>>()?;
        let mut live = Vec::new();
        for p in f_arr(&packets, "live")? {
            let cols = p.as_arr().ok_or("live packet must be an array")?;
            let [slot, id, injected_at, hop_idx, hops_taken, planned_hops, reroutes, route] = cols
            else {
                return Err("live packet must hold 8 columns".into());
            };
            live.push(LivePacket {
                slot: to_u32(elem_u64(slot)?)?,
                id: elem_u64(id)?,
                injected_at: elem_u64(injected_at)?,
                hop_idx: to_u32(elem_u64(hop_idx)?)?,
                hops_taken: to_u32(elem_u64(hops_taken)?)?,
                planned_hops: to_u32(elem_u64(planned_hops)?)?,
                reroutes: to_u32(elem_u64(reroutes)?)?,
                route: u64s(route.as_arr().ok_or("route must be an array")?)?,
            });
        }

        let mut queue_items = Vec::new();
        for q in f_arr(&queues, "items")? {
            let pair = q.as_arr().ok_or("queue entry must be [node, [slots]]")?;
            let [node, slots] = pair else {
                return Err("queue entry must be [node, [slots]]".into());
            };
            queue_items.push((
                elem_u64(node)?,
                u64s(slots.as_arr().ok_or("queue slots must be an array")?)?
                    .into_iter()
                    .map(to_u32)
                    .collect::<Result<Vec<u32>, String>>()?,
            ));
        }

        let mut ledger = Vec::new();
        for e in f_arr(&collective, "ledger")? {
            ledger.push(match e {
                JsonValue::Null => None,
                other => {
                    let pair = other.as_arr().ok_or("ledger entry must be [node, cycle]")?;
                    let [node, cycle] = pair else {
                        return Err("ledger entry must be [node, cycle]".into());
                    };
                    Some((NodeId(elem_u64(node)?), elem_u64(cycle)?))
                }
            });
        }
        let mut ops = Vec::new();
        for o in f_arr(&collective, "ops")? {
            let cols = u64s(o.as_arr().ok_or("op entry must be an array")?)?;
            let [op, root, started, expected, delivered, dropped, last_delivery] = cols[..] else {
                return Err("op entry must hold 7 counters".into());
            };
            ops.push(OpStat {
                op,
                root,
                started,
                expected,
                delivered,
                dropped,
                last_delivery,
            });
        }
        let mut tree_cache = Vec::new();
        for t in f_arr(&collective, "trees")? {
            tree_cache.push(TreeRepr {
                class: f_u64(t, "class")?,
                root: f_u64(t, "root")?,
                generation: f_u64(t, "generation")?,
                regrafted: f_u64(t, "regrafted")?,
                reattached: f_u64(t, "reattached")?,
                lost: f_u64(t, "lost")?,
                rebuilt: f_bool(t, "rebuilt")?,
                parent: u64s(f_arr(t, "parent")?)?,
                depth: u64s(f_arr(t, "depth")?)?,
                order: u64s(f_arr(t, "order")?)?,
            });
        }

        Ok(Checkpoint {
            config,
            strategy,
            trees: f_u64(&run, "trees")? as usize,
            trace_mark: f_u64(&run, "trace_mark")?,
            cycle: f_u64(&core, "cycle")?,
            done: f_bool(&core, "done")?,
            ended_at: f_u64(&core, "ended_at")?,
            next_id: f_u64(&core, "next_id")?,
            in_flight: f_u64(&core, "in_flight")?,
            converge_at,
            synced,
            traffic_rng: rng_words(&core, "traffic_rng")?,
            injector_rng: rng_words(&core, "injector_rng")?,
            monitor_state,
            monitor_downgraded: f_bool(&core, "monitor_downgraded")?,
            truth: FaultsRepr::from_json(field(&faults, "truth")?)?,
            view: FaultsRepr::from_json(field(&faults, "view")?)?,
            pending,
            fault_trace,
            metrics: m,
            windows: window_stats,
            arena,
            free,
            live,
            queues: queue_items,
            ledger,
            ops,
            tree_cache,
        })
    }

    // -- restore ---------------------------------------------------------

    /// Rebuild a running engine from this checkpoint. `sim` must have been
    /// constructed from [`Checkpoint::config`] and a strategy matching
    /// [`Checkpoint::strategy`] / [`Checkpoint::trees`] — derived state
    /// (cube, link table, plan caches) is rebuilt from it.
    pub(crate) fn rebuild(&self, sim: &Simulator) -> Result<EngineCore, String> {
        if sim.config() != &self.config {
            return Err("simulator config differs from the checkpoint's".into());
        }
        match sim.algorithm().wire_spec() {
            Some((name, trees)) if name == self.strategy && trees == self.trees => {}
            other => {
                return Err(format!(
                    "simulator strategy {other:?} differs from the checkpoint's ({:?}, {})",
                    self.strategy, self.trees
                ));
            }
        }
        let n_nodes = sim.cube().num_nodes();

        // Null sinks on purpose: the cycle-0 health event was already
        // emitted by the original run (it sits before the trace mark).
        let mut core = EngineCore::new(sim, &mut NullSink, &mut NullTelemetry);
        core.cycle = self.cycle;
        core.done = self.done;
        core.ended_at = self.ended_at;
        core.next_id = self.next_id;
        core.in_flight = self.in_flight;
        core.converge_at = self.converge_at;
        core.synced = self.synced;

        core.traffic.restore_rng(self.traffic_rng);
        let mut pending: BTreeMap<u64, Vec<PendingOp>> = BTreeMap::new();
        for &(cycle, action, target, kind) in &self.pending {
            pending.entry(cycle).or_default().push(PendingOp {
                action,
                target,
                kind,
            });
        }
        core.injector
            .restore(self.injector_rng, pending, self.fault_trace.clone());
        core.monitor = FaultBudgetMonitor::from_parts(
            self.monitor_state,
            sim.algorithm().survives_bound_exceeded(),
            self.monitor_downgraded,
        );

        core.truth = self.truth.rebuild();
        core.view = self.view.rebuild();
        core.links = LinkTable::new(n_nodes, sim.cube().n());
        core.links.sync(&core.truth);

        core.metrics = self.metrics;
        core.windows = self.windows.clone();

        // Packet arena: default-fill every column to the captured length
        // (freed slots hold junk in the original too — allocation
        // overwrites every column), then overwrite the live slots and
        // restore the freelist order exactly, since it dictates which slot
        // the next injection lands in.
        let mut store = PacketStore::new();
        store.id.resize(self.arena, 0);
        store.injected_at.resize(self.arena, 0);
        store.hop_idx.resize(self.arena, 0);
        store.hops_taken.resize(self.arena, 0);
        store.planned_hops.resize(self.arena, 0);
        store.reroutes.resize(self.arena, 0);
        store.routes.resize(self.arena, None);
        store.next.resize(self.arena, NIL);
        for p in &self.live {
            let s = p.slot as usize;
            if s >= self.arena {
                return Err(format!("live packet slot {s} outside arena"));
            }
            store.id[s] = p.id;
            store.injected_at[s] = p.injected_at;
            store.hop_idx[s] = p.hop_idx;
            store.hops_taken[s] = p.hops_taken;
            store.planned_hops[s] = p.planned_hops;
            store.reroutes[s] = p.reroutes;
            store.routes[s] = Some(Route::new(p.route.iter().map(|&v| NodeId(v)).collect()));
        }
        store.free = self.free.clone();

        let mut queues = NodeQueues::new(n_nodes);
        for (v, slots) in &self.queues {
            let v = *v as usize;
            if v >= n_nodes as usize {
                return Err(format!("queue for node {v} outside the cube"));
            }
            for &slot in slots {
                queues.push_back(&mut store, v, slot);
            }
            core.class_queued[v & core.cmask] += slots.len() as u64;
            core.class_occupied[v & core.cmask] += 1;
        }
        core.store = store;
        core.queues = queues;

        core.repair_ledger = crate::collective::RepairLedger::from_last(self.ledger.clone());
        core.op_tracker = crate::collective::OpTracker::from_ops(self.ops.clone());
        // Re-seed the collective tree cache: a regraft diffs against the
        // cached previous tree, so both the next repair outcome and the
        // patched tree's shape depend on this history.
        if let Some(cp) = &core.collective {
            for t in &self.tree_cache {
                cp.cache().restore_tree(t.rebuild()?);
            }
        } else if !self.tree_cache.is_empty() {
            return Err("checkpoint holds collective trees but the run has no collective".into());
        }
        Ok(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CollectiveOp;
    use crate::injection::{CategoryMix, FaultSchedule};
    use crate::profiler::NullProfiler;
    use crate::strategy::build_strategy;
    use crate::trace::{to_jsonl, MemorySink};

    fn churn_config() -> SimConfig {
        SimConfig::new(6, 2)
            .with_rate(0.08)
            .with_cycles(200, 800, 20)
            .with_seed(0xc0de)
            .with_faults(1)
            .with_schedule(FaultSchedule::Bernoulli {
                rate: 0.02,
                kind: FaultKind::Transient { repair_after: 40 },
                mix: CategoryMix::default(),
                node_fraction: 0.5,
            })
            .with_collective(CollectiveOp::Broadcast)
            .with_collective_interval(25)
    }

    /// Run to `pause` cycles, checkpoint, then confirm that (a) the text
    /// form round-trips to an equal `Checkpoint`, and (b) the restored
    /// engine replays exactly the uninterrupted run's trace suffix and
    /// final metrics.
    fn round_trip_at(pause: u64) {
        let cfg = churn_config();
        let algo = build_strategy("ftgcr", 0).unwrap();
        let sim = Simulator::try_new(cfg.clone(), &*algo).unwrap();

        let mut sink = MemorySink::default();
        let mut core = EngineCore::new(&sim, &mut sink, &mut NullTelemetry);
        while core.cycle < pause
            && !core.step(&sim, &mut sink, &mut NullTelemetry, &mut NullProfiler)
        {}
        let ck = Checkpoint::capture(&sim, &core, sink.events().len() as u64).unwrap();
        let back = Checkpoint::from_text(&ck.to_text()).unwrap();
        assert_eq!(back, ck, "text form must round-trip");

        // Finish the original run untouched.
        while !core.step(&sim, &mut sink, &mut NullTelemetry, &mut NullProfiler) {}
        let full = core.finish(&sim, &mut NullTelemetry, &mut NullProfiler);

        // Resume from the parsed checkpoint in a fresh simulator.
        let algo2 = build_strategy(back.strategy(), back.trees()).unwrap();
        let sim2 = Simulator::try_new(back.config().clone(), &*algo2).unwrap();
        let mut sink2 = MemorySink::default();
        let mut core2 = back.rebuild(&sim2).unwrap();
        while !core2.step(&sim2, &mut sink2, &mut NullTelemetry, &mut NullProfiler) {}
        let resumed = core2.finish(&sim2, &mut NullTelemetry, &mut NullProfiler);

        let mark = back.trace_mark() as usize;
        assert_eq!(
            to_jsonl(&sink.events()[mark..]),
            to_jsonl(sink2.events()),
            "restored run must replay the exact trace suffix (pause {pause})"
        );
        assert_eq!(
            format!("{:?}", full.metrics),
            format!("{:?}", resumed.metrics),
            "final metrics must match (pause {pause})"
        );
        assert_eq!(
            format!("{:?}", full.windows),
            format!("{:?}", resumed.windows),
            "window series must match (pause {pause})"
        );
        assert_eq!(
            format!("{:?}", full.trace),
            format!("{:?}", resumed.trace),
            "fault event history must match (pause {pause})"
        );
        assert_eq!(
            format!("{:?}", full.collectives),
            format!("{:?}", resumed.collectives),
            "collective records must match (pause {pause})"
        );
    }

    #[test]
    fn round_trips_mid_injection() {
        round_trip_at(97);
    }

    #[test]
    fn round_trips_during_drain() {
        round_trip_at(250);
    }

    #[test]
    fn round_trips_at_cycle_zero() {
        round_trip_at(0);
    }

    #[test]
    fn rejects_mismatched_simulator() {
        let cfg = churn_config();
        let algo = build_strategy("ftgcr", 0).unwrap();
        let sim = Simulator::try_new(cfg.clone(), &*algo).unwrap();
        let core = EngineCore::new(&sim, &mut NullSink, &mut NullTelemetry);
        let ck = Checkpoint::capture(&sim, &core, 0).unwrap();

        let other_cfg = cfg.clone().with_seed(1);
        let sim_seed = Simulator::try_new(other_cfg, &*algo).unwrap();
        assert!(
            ck.rebuild(&sim_seed).is_err(),
            "wrong config must be refused"
        );

        let ffgcr = build_strategy("ffgcr", 0).unwrap();
        let sim_algo = Simulator::try_new(cfg, &*ffgcr).unwrap();
        assert!(
            ck.rebuild(&sim_algo).is_err(),
            "wrong strategy must be refused"
        );
    }

    #[test]
    fn truncated_and_corrupt_files_are_rejected() {
        let cfg = SimConfig::new(6, 2);
        let algo = build_strategy("ffgcr", 0).unwrap();
        let sim = Simulator::try_new(cfg, &*algo).unwrap();
        let core = EngineCore::new(&sim, &mut NullSink, &mut NullTelemetry);
        let ck = Checkpoint::capture(&sim, &core, 0).unwrap();
        let text = ck.to_text();

        let no_end = text.replace("{\"section\":\"end\"}\n", "");
        let err = Checkpoint::from_text(&no_end).unwrap_err();
        assert!(err.contains("truncated"), "{err}");

        let headless = text.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(Checkpoint::from_text(&headless).is_err());

        assert!(Checkpoint::from_text("").is_err());
    }

    #[test]
    fn ecube_cannot_be_checkpointed() {
        let algo = crate::strategy::EcubeBaseline;
        let sim = Simulator::try_new(SimConfig::new(4, 4), &algo).unwrap();
        let core = EngineCore::new(&sim, &mut NullSink, &mut NullTelemetry);
        let err = Checkpoint::capture(&sim, &core, 0).unwrap_err();
        assert!(err.contains("wire identity"), "{err}");
    }
}
