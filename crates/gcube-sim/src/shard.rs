//! The deterministic multi-threaded shard engine.
//!
//! Theorem 2 makes ending classes the natural shard key: a hop over a
//! dimension `>= α` stays inside the sender's ending class, so
//! partitioning the nodes by ending class puts every intra-class hop
//! shard-local and confines cross-shard traffic to the low `α`
//! dimensions. Each of the `T = min(threads, 2^α)` shards owns a
//! contiguous chunk of classes and runs the same cycle loop as the
//! sequential engine over its own nodes — on the same structure-of-arrays
//! packet state ([`crate::soa`]) the sequential engine uses.
//!
//! # Lockstep protocol
//!
//! Shard 0 is the *coordinator* and runs on the calling thread (it alone
//! touches the caller's trace and telemetry sinks, so the worker threads
//! need no `Send` bounds on the sinks); shards `1..T` are workers on
//! `std::thread::scope` threads. All cross-shard traffic flows through a
//! shared [`Exchange`]: preallocated mailbox cells synchronised by a
//! spinning [`SpinBarrier`] — no channels, no per-cycle allocation, no
//! cloned fault views. Every cycle proceeds in barriered rounds:
//!
//! 1. **Phase 0 (replicated, no communication).** Every shard owns an
//!    identical replica of the ground truth, the routing view, and the
//!    fault injector (all seeded deterministically), so fault events,
//!    stranding of its own nodes, and view reconvergence are computed
//!    locally and identically everywhere.
//! 2. **Round A — injection (work-stealing).** The coordinator runs the
//!    single traffic RNG over all nodes in node order (preserving the
//!    sequential draw sequence exactly) and groups the requests by
//!    *ending class* into shared plan units. After a barrier, **every**
//!    thread steals whole units off an atomic cursor and plans them
//!    against its own (identical) view replica — so a skewed class
//!    doesn't serialise on its owner. After a second barrier, owners
//!    account their classes' outcomes. Stealing is deterministic: the
//!    plan-cache key includes the source ending class, so concurrent
//!    units touch disjoint key sets and the hit/miss counters match the
//!    sequential run for any thread count.
//! 3. **Forward scan (parallel).** Each shard walks its occupancy bitset
//!    in the global rotated service order. Head classification reads
//!    only the packet and the truth — never the view — so it is
//!    order-independent. Blocked heads become *recovery candidates*
//!    (snapshot shipped to the coordinator, queue untouched); everything
//!    else is delivered, dropped, or moved exactly as in the sequential
//!    scan.
//! 4. **Round B — move exchange.** Each sender swaps its per-receiver
//!    move buffer into the exchange's double-buffered mailbox grid
//!    (indexed by cycle parity, so a fast shard's next-cycle publish
//!    never races a slow shard's current-cycle drain); after the barrier
//!    each receiver drains its column and merges arrivals by
//!    `(service index, packet id)` — the exact sequential drain order.
//! 5. **Round C — recovery resolution.** The coordinator resolves all
//!    candidates in service order against its view — exactly the
//!    sequential interleaving of local discovery and replanning — and
//!    publishes the verdicts plus the ordered view mutations in shared
//!    cells; every shard applies them so the view replicas stay
//!    identical.
//! 6. **Round D — observers.** Only when a telemetry sink *or a
//!    profiler* is attached (both sides derive the gate from the same
//!    flags, so the barrier counts always agree): workers copy their
//!    per-cycle counter deltas and ending-class snapshots into
//!    pre-sized exchange cells; the coordinator folds them in and
//!    samples between two barriers (so the plan caches are quiescent
//!    and the cells are never overwritten mid-read).
//!
//! # Determinism
//!
//! The output is bitwise identical to [`Simulator::run_sequential`] for
//! every thread count: metrics and windows are commutative sums merged
//! at the end; trace events carry a `(stream, index, seq)` sort key that
//! reproduces the exact sequential emission order; packet ids are a pure
//! function of the traffic stream (assigned per injection attempt by the
//! coordinator); and the arrival merge sorts by the explicit
//! `(service index, packet id)` key, restoring the sequential FIFO push
//! order even if two shards ever produced the same service index.
//! Wall-clock phase timings are coordinator-only and never enter the
//! deterministic exports.

use std::mem;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use gcube_routing::faults::fault_budget;
use gcube_routing::plan_cache::PlanCache;
use gcube_routing::{FaultSet, Route};
use gcube_topology::{LinkId, NodeId, Topology};

use crate::collective::{is_collective, CollectivePlanner, LaunchPlan, OpTracker, RepairLedger};
use crate::engine::{sync_view, Simulator};
use crate::injection::FaultInjector;
use crate::metrics::{
    merge_ops, merge_windows, ChurnReport, Metrics, OpStat, WindowStat, MAX_TREES,
};
use crate::packet::Packet;
use crate::profiler::{ProfSample, ProfilerSink, ShardProfile};
use crate::soa::{LinkTable, NodeQueues, PacketStore};
use crate::strategy::{PlannedRoute, TreeChoice};
use crate::telemetry::{CycleView, FaultBudgetMonitor, Phase, ShardTelemetry, TelemetrySink};
use crate::trace::{DropCause, TraceEvent, TraceEventKind, TraceSink, NETWORK_EVENT_PACKET};
use crate::traffic::TrafficGen;

/// Trace-stream tags for the per-cycle merge key, in sequential emission
/// order: network health, stranding drops, collective launch, injection,
/// forwarding-scan resolutions (including recovery), move drain.
const SUB_HEALTH: u64 = 0;
const SUB_STRAND: u64 = 1;
const SUB_LAUNCH: u64 = 2;
const SUB_INJECT: u64 = 3;
const SUB_SCAN: u64 = 4;
const SUB_MOVE: u64 = 5;

/// Sort key reproducing the sequential trace order within one cycle:
/// stream tag, then node id (streams 1–2) or service index (streams
/// 3–4), then event sequence within that slot.
#[inline]
fn ekey(sub: u64, idx: u64, seq: u64) -> u64 {
    debug_assert!(idx < 1 << 40 && seq < 1 << 20);
    (sub << 60) | (idx << 20) | seq
}

/// A sense-reversing hybrid barrier. With enough cores for every shard,
/// waiters spin (briefly yielding between probes) — a handful of atomic
/// operations per round, microseconds cheaper than parking on a
/// `std::sync::Barrier`, which matters at thousands of rounds per
/// second. On an oversubscribed host (more shards than cores) waiters
/// park on a condvar instead: a yield loop there keeps pre-empting the
/// one thread everyone is waiting on, turning each round into a storm
/// of context switches.
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
    /// Spin before probing again; false parks waiters on the condvar.
    spin: bool,
    lock: Mutex<()>,
    parked: Condvar,
}

impl SpinBarrier {
    fn new(total: usize) -> SpinBarrier {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
            spin: cores >= total,
            lock: Mutex::new(()),
            parked: Condvar::new(),
        }
    }

    /// Block until all `total` threads arrive. Memory ordering: every
    /// write before any thread's `wait` is visible to every thread after
    /// its `wait` (the arrivals form a release sequence on `count`; the
    /// last arriver publishes via a release store of `generation`).
    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Relaxed);
            // Publish under the lock so a parking waiter cannot check
            // the generation and then miss the wakeup.
            let guard = self.lock.lock().expect("barrier poisoned");
            self.generation.fetch_add(1, Ordering::Release);
            drop(guard);
            self.parked.notify_all();
            return;
        }
        if self.spin {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        } else {
            let mut guard = self.lock.lock().expect("barrier poisoned");
            while self.generation.load(Ordering::Acquire) == gen {
                guard = self.parked.wait(guard).expect("barrier poisoned");
            }
        }
    }
}

/// One injection request: the coordinator drew the traffic stream, any
/// thread may plan it, the owning shard accounts it.
struct InjectReq {
    src: u64,
    dst: NodeId,
    id: u64,
}

/// One ending class's injection requests plus the planned routes filled
/// in by whichever thread stole the unit. `plans[i]` is `None` when
/// planning failed (accounted as a route failure by the owner).
#[derive(Default)]
struct PlanUnit {
    reqs: Vec<InjectReq>,
    plans: Vec<Option<PlannedRoute>>,
}

/// A routing-view mutation discovered during recovery, published once
/// and applied by every replica in the identical order.
#[derive(Clone, Copy)]
enum ViewOp {
    Node(NodeId),
    Link(LinkId),
}

/// The coordinator's ruling on one recovery candidate. Drops are fully
/// accounted by the coordinator; the owner only mutates its queue.
enum Verdict {
    Replan(Route),
    Drop,
}

/// Round D cell: a worker's per-cycle counter delta and ending-class
/// snapshot, copied into pre-sized buffers (no per-window clones).
struct TelemetryCell {
    delta: ShardTelemetry,
    class_queued: Vec<u64>,
    class_occupied: Vec<u64>,
}

/// A mailbox cell of `(service index, packet)` pairs.
type PacketCell = Mutex<Vec<(u32, Packet)>>;
/// A buffered-trace cell of `(sort key, event)` pairs.
type EventCell = Mutex<Vec<(u64, TraceEvent)>>;
/// A shard's end-of-run payload for the final reduction.
type FinalCell = Mutex<Option<(Box<Metrics>, Vec<WindowStat>, Vec<OpStat>, ShardProfile)>>;

/// The shared-memory mailbox grid replacing the old per-cycle `mpsc`
/// batches. Everything is preallocated; per-cycle traffic is mutex-swaps
/// of `Vec`s whose capacities circulate between senders and cells.
///
/// Cells written before a barrier and read after it are race-free by
/// construction. Cells that a fast shard could refill for cycle `c+1`
/// while a slow shard still drains cycle `c` (the move grid, the event
/// cells, the contribution counters — anything written *before* the
/// round barrier and read *after* it with no later barrier in the same
/// cycle) are double-buffered on cycle parity.
struct Exchange {
    barrier: SpinBarrier,
    shards: usize,
    /// `moves[parity][sender * shards + receiver]`: packets the sender
    /// moved into the receiver's shard this cycle, tagged with the
    /// sender-side service index.
    moves: [Vec<PacketCell>; 2],
    /// Per-sender recovery candidates for the coordinator. Only written
    /// in cycles where Round C runs (its barrier gates the reuse), so no
    /// parity split is needed.
    candidates: Vec<PacketCell>,
    /// Per-sender buffered trace events for the coordinator's merge.
    events: [Vec<EventCell>; 2],
    /// Per-sender in-flight contributions for the cooperative exit test.
    contrib: [Vec<AtomicU64>; 2],
    /// Round A work-stealing: one unit per ending class, claimed whole
    /// off the cursor.
    plan_units: Vec<Mutex<PlanUnit>>,
    plan_cursor: AtomicUsize,
    /// Round C broadcast: per-shard verdicts plus the shared ordered
    /// view-op list (read in place — the old engine cloned it per
    /// worker per cycle).
    verdicts: Vec<Mutex<Vec<(u32, Verdict)>>>,
    view_ops: Mutex<Vec<ViewOp>>,
    verdict_drops: AtomicU64,
    telemetry: Vec<Mutex<TelemetryCell>>,
    /// Per-sender forwarded-hop counts for the profiler's deterministic
    /// `moved` counter, published alongside `contrib` (so the same
    /// Round B barrier orders them) and parity-buffered for the same
    /// reason. Written only when a profiler is attached.
    hops: [Vec<AtomicU64>; 2],
    finals: Vec<FinalCell>,
}

impl Exchange {
    fn new(shards: usize, classes: usize, n_dims: usize) -> Exchange {
        fn cells<T>(count: usize) -> Vec<Mutex<Vec<T>>> {
            (0..count).map(|_| Mutex::new(Vec::new())).collect()
        }
        Exchange {
            barrier: SpinBarrier::new(shards),
            shards,
            moves: [cells(shards * shards), cells(shards * shards)],
            candidates: cells(shards),
            events: [cells(shards), cells(shards)],
            contrib: [
                (0..shards).map(|_| AtomicU64::new(0)).collect(),
                (0..shards).map(|_| AtomicU64::new(0)).collect(),
            ],
            plan_units: (0..classes)
                .map(|_| Mutex::new(PlanUnit::default()))
                .collect(),
            plan_cursor: AtomicUsize::new(0),
            verdicts: cells(shards),
            view_ops: Mutex::new(Vec::new()),
            verdict_drops: AtomicU64::new(0),
            hops: [
                (0..shards).map(|_| AtomicU64::new(0)).collect(),
                (0..shards).map(|_| AtomicU64::new(0)).collect(),
            ],
            telemetry: (0..shards)
                .map(|_| {
                    Mutex::new(TelemetryCell {
                        delta: ShardTelemetry::new(n_dims),
                        class_queued: vec![0; classes],
                        class_occupied: vec![0; classes],
                    })
                })
                .collect(),
            finals: (0..shards).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Swap this sender's non-empty per-receiver buffers into the
    /// mailbox grid, taking the cells' drained (empty, capacity-bearing)
    /// vectors back — the steady state allocates nothing.
    fn publish_moves(&self, parity: usize, me: usize, out: &mut [Vec<(u32, Packet)>]) {
        for (r, buf) in out.iter_mut().enumerate() {
            if r == me || buf.is_empty() {
                continue;
            }
            let mut cell = self.moves[parity][me * self.shards + r]
                .lock()
                .expect("mailbox poisoned");
            debug_assert!(cell.is_empty(), "receiver must have drained last use");
            mem::swap(&mut *cell, buf);
        }
    }

    /// Drain every sender's mailbox for this receiver into `arrivals`.
    fn drain_moves(&self, parity: usize, me: usize, arrivals: &mut Vec<(u32, Packet)>) {
        for s in 0..self.shards {
            if s == me {
                continue;
            }
            let mut cell = self.moves[parity][s * self.shards + me]
                .lock()
                .expect("mailbox poisoned");
            arrivals.append(&mut cell);
        }
    }
}

/// Split `num_classes` ending classes into `shards` contiguous chunks
/// (first `num_classes % shards` chunks one class larger). Each entry is
/// the half-open class range `[lo, hi)` owned by that shard. Exported so
/// the CLI health report can print the layout.
pub fn class_ranges(num_classes: usize, shards: usize) -> Vec<(usize, usize)> {
    let base = num_classes / shards;
    let rem = num_classes % shards;
    let mut start = 0;
    (0..shards)
        .map(|s| {
            let len = base + usize::from(s < rem);
            let range = (start, start + len);
            start += len;
            range
        })
        .collect()
}

/// What phase 0 did, so the coordinator can run the network-global
/// accounting (fault-event counters, health monitor, staleness hooks)
/// exactly once.
struct CycleStart {
    applied: usize,
    reconverged: bool,
    stale: bool,
}

/// One shard's replicated state plus the node-local state it owns. Both
/// the coordinator and the workers drive one of these; everything
/// network-global (traffic RNG, health monitor, sinks, recovery
/// resolution) lives in [`run_coordinator`] itself.
struct Shard<'s, 'a> {
    sim: &'s Simulator<'a>,
    me: usize,
    class_owner: &'s [usize],
    cmask: usize,
    n_nodes: u64,
    store: PacketStore,
    queues: NodeQueues,
    links: LinkTable,
    /// Scratch for occupancy-bitset scans (stranding and forwarding).
    scan_buf: Vec<u32>,
    class_queued: Vec<u64>,
    class_occupied: Vec<u64>,
    class_range: (usize, usize),
    /// Packets currently sitting in this shard's queues.
    local_queued: u64,
    truth: FaultSet,
    view: FaultSet,
    synced: (u64, u64),
    injector: FaultInjector,
    converge_at: Option<u64>,
    dynamic: bool,
    ttl: u64,
    warmup: u64,
    window: u64,
    metrics: Metrics,
    windows: Vec<WindowStat>,
    delta: ShardTelemetry,
    events: Vec<(u64, TraceEvent)>,
    candidates: Vec<(u32, Packet)>,
    out_moves: Vec<Vec<(u32, Packet)>>,
    arrivals: Vec<(u32, Packet)>,
    tracing_on: bool,
    telemetry_on: bool,
    profiling_on: bool,
    /// Whole-run report-only profiler counters for this shard.
    profile: ShardProfile,
    /// Forwarded hops this cycle, published pre-Round-B so the
    /// coordinator can fold the deterministic global total.
    cycle_hops: u64,
    /// The collective planner, sharing one tree cache across all shards
    /// (the plan itself is replicated, so cache races only ever produce
    /// identical trees).
    collective: Option<CollectivePlanner>,
    /// Per-op completion records for this shard's share of each wave;
    /// every shard tracks identical metadata, outcomes are disjoint and
    /// merged positionally at the final reduction.
    op_tracker: OpTracker,
}

impl<'s, 'a> Shard<'s, 'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        sim: &'s Simulator<'a>,
        me: usize,
        shards: usize,
        class_owner: &'s [usize],
        tracing_on: bool,
        telemetry_on: bool,
        profiling_on: bool,
        collective_cache: Option<Arc<PlanCache>>,
    ) -> Shard<'s, 'a> {
        let n_nodes = sim.gc.num_nodes();
        let cmask = (1usize << sim.gc.alpha()) - 1;
        let truth = sim.faults.clone();
        let view = sim.faults.clone();
        let synced = (truth.generation(), view.generation());
        let mut links = LinkTable::new(n_nodes, sim.gc.n());
        links.sync(&truth);
        Shard {
            sim,
            me,
            class_owner,
            cmask,
            n_nodes,
            store: PacketStore::new(),
            queues: NodeQueues::new(n_nodes),
            links,
            scan_buf: Vec::new(),
            class_queued: vec![0; cmask + 1],
            class_occupied: vec![0; cmask + 1],
            class_range: class_ranges(cmask + 1, shards)[me],
            local_queued: 0,
            truth,
            view,
            synced,
            injector: FaultInjector::new(&sim.gc, sim.config.schedule.clone(), sim.config.seed),
            converge_at: None,
            dynamic: !sim.config.schedule.is_none(),
            ttl: sim.config.effective_ttl(),
            warmup: sim.config.warmup_cycles.min(sim.config.inject_cycles),
            window: sim.config.window.max(1),
            metrics: Metrics::default(),
            windows: Vec::new(),
            delta: ShardTelemetry::new(sim.gc.n() as usize),
            events: Vec::new(),
            candidates: Vec::new(),
            out_moves: (0..shards).map(|_| Vec::new()).collect(),
            arrivals: Vec::new(),
            tracing_on,
            telemetry_on,
            profiling_on,
            profile: ShardProfile::default(),
            cycle_hops: 0,
            collective: collective_cache.map(|cache| {
                CollectivePlanner::new(
                    sim.config
                        .collective
                        .expect("cache is only built for collective runs"),
                    sim.config.collective_interval,
                    sim.config.seed,
                    cache,
                )
            }),
            op_tracker: OpTracker::new(),
        }
    }

    /// The replicated collective launch: every shard computes the same
    /// plan (the planner is RNG-free and routes on the identical view
    /// replica) and injects only the wave packets whose source it owns —
    /// before Round A, so per-node queues hold the collective wave ahead
    /// of the cycle's unicast injection, exactly like the sequential
    /// engine. Returns `None` when no op is due, `Some(None)` for a
    /// skipped op (dead root class or nothing to send), and the drained
    /// plan otherwise so the coordinator can run the repair ledger.
    fn launch_collective(&mut self, cycle: u64, inject_cycles: u64) -> Option<Option<LaunchPlan>> {
        let plan = {
            let cp = self.collective.as_ref()?;
            let op_index = cp.due(cycle, inject_cycles)?;
            cp.plan(
                &self.sim.gc,
                &self.view,
                self.view.generation(),
                |v: NodeId| self.links.node_faulty(v.0),
                op_index,
            )
        };
        let Some(mut plan) = plan else {
            return Some(None);
        };
        self.op_tracker.begin(&plan, cycle);
        let widx = (cycle / self.window) as usize;
        for pkt in plan.packets.drain(..) {
            let vu = pkt.src.0 as usize;
            if self.class_owner[vu & self.cmask] != self.me {
                continue;
            }
            self.metrics.injected_total += 1;
            self.metrics.collective_injected += 1;
            if self.telemetry_on {
                self.delta.injected += 1;
            }
            self.windows[widx].injected += 1;
            if self.tracing_on {
                self.events.push((
                    ekey(SUB_LAUNCH, u64::from(pkt.rank), 0),
                    TraceEvent {
                        cycle,
                        packet: pkt.id,
                        node: pkt.src,
                        kind: TraceEventKind::Inject {
                            dst: pkt.route.dest(),
                            planned_hops: pkt.route.hops() as u64,
                        },
                    },
                ));
            }
            let slot = self.store.alloc(pkt.id, cycle, pkt.route);
            if self.queues.is_empty(vu) {
                self.class_occupied[vu & self.cmask] += 1;
            }
            self.class_queued[vu & self.cmask] += 1;
            self.local_queued += 1;
            self.queues.push_back(&mut self.store, vu, slot);
        }
        Some(Some(plan))
    }

    /// Phase 0: lazily open the cycle's window, then (dynamic runs)
    /// replicate the fault step, strand this shard's own dead queues,
    /// and advance the view-reconvergence state machine. Every shard
    /// computes the identical outcome; only the caller's coordinator
    /// instance feeds it into metrics and sinks.
    fn begin_cycle(&mut self, cycle: u64) -> CycleStart {
        let widx = (cycle / self.window) as usize;
        if self.windows.len() <= widx {
            self.windows.push(WindowStat {
                start: widx as u64 * self.window,
                end: (widx as u64 + 1) * self.window,
                ..WindowStat::default()
            });
        }
        let mut start = CycleStart {
            applied: 0,
            reconverged: false,
            stale: false,
        };
        if !self.dynamic {
            return start;
        }
        start.applied = self.injector.step(cycle, &mut self.truth);
        if start.applied > 0 {
            self.links.sync(&self.truth);
            let measuring = cycle >= self.warmup;
            // The occupancy bitset holds exactly this shard's non-empty
            // nodes (only owned nodes ever receive pushes), in ascending
            // order — the sequential stranding order.
            let mut buf = mem::take(&mut self.scan_buf);
            self.queues.collect_occupied(&mut buf);
            for &vq in &buf {
                if !self.links.node_faulty(u64::from(vq)) {
                    continue;
                }
                let v = vq as usize;
                self.class_queued[v & self.cmask] -= self.queues.len(v) as u64;
                self.class_occupied[v & self.cmask] -= 1;
                let mut seq = 0u64;
                while !self.queues.is_empty(v) {
                    let slot = self.queues.pop_front(&mut self.store, v);
                    let pkt = self.store.remove(slot);
                    self.local_queued -= 1;
                    self.count_drop(
                        &pkt,
                        DropCause::Stranded,
                        measuring,
                        cycle,
                        widx,
                        NodeId(v as u64),
                        ekey(SUB_STRAND, v as u64, seq),
                    );
                    seq += 1;
                }
            }
            self.scan_buf = buf;
            let delay = self.sim.knowledge_delay(&self.truth);
            if delay == 0 {
                sync_view(&mut self.view, &self.truth, &mut self.synced);
            } else {
                self.converge_at = Some(cycle + delay);
            }
        }
        if let Some(t) = self.converge_at {
            if cycle >= t {
                sync_view(&mut self.view, &self.truth, &mut self.synced);
                self.converge_at = None;
                start.reconverged = true;
            } else {
                start.stale = true;
            }
        }
        start
    }

    /// Mirror of the sequential engine's `count_drop`, accounting into
    /// this shard's metrics, window, telemetry delta, and event buffer.
    #[allow(clippy::too_many_arguments)]
    fn count_drop(
        &mut self,
        pkt: &Packet,
        cause: DropCause,
        measuring: bool,
        cycle: u64,
        widx: usize,
        node: NodeId,
        key: u64,
    ) {
        self.windows[widx].dropped += 1;
        self.metrics.dropped_total += 1;
        if self.telemetry_on {
            self.delta.dropped += 1;
        }
        if is_collective(pkt.id) {
            // Collective packets keep the whole-run and window ledgers
            // but stay out of the measured unicast drop taxonomy.
            self.metrics.collective_dropped += 1;
            self.op_tracker.dropped(pkt.id);
        } else if measuring && pkt.injected_at >= self.warmup {
            self.metrics.dropped += 1;
            match cause {
                DropCause::TtlExpired => self.metrics.ttl_expired += 1,
                DropCause::Stranded => self.metrics.dropped_stranded += 1,
                DropCause::Unrecoverable => self.metrics.dropped_unrecoverable += 1,
            }
            if pkt.reroutes > 0 {
                self.metrics.rerouted_packets += 1;
            }
        }
        if self.tracing_on {
            self.events.push((
                key,
                TraceEvent {
                    cycle,
                    packet: pkt.id,
                    node,
                    kind: TraceEventKind::Drop { cause },
                },
            ));
        }
    }

    /// Mirror of the sequential engine's `account_tree_choice`: whole-run
    /// tree counters, the window switch series, and the telemetry delta.
    fn account_tree_choice(&mut self, widx: usize, tc: TreeChoice) {
        if tc.exhausted {
            self.metrics.tree_exhausted += 1;
        } else {
            self.metrics.tree_routes[tc.tree as usize % MAX_TREES] += 1;
        }
        self.metrics.tree_switches += u64::from(tc.switches);
        self.windows[widx].tree_switches += u64::from(tc.switches);
        if self.telemetry_on {
            self.delta.tree_switches += u64::from(tc.switches);
            if tc.exhausted {
                self.delta.tree_exhausted += 1;
            }
        }
    }

    /// Round A, stealing side: claim whole plan units off the shared
    /// cursor and plan their requests against this shard's view replica.
    /// All replicas are identical between the two Round A barriers, so
    /// the routes are independent of who plans them; unit granularity is
    /// an ending class, so concurrent units hit disjoint plan-cache keys
    /// and the cache counters stay deterministic.
    fn plan_stolen_units(&mut self, ex: &Exchange) {
        loop {
            let u = ex.plan_cursor.fetch_add(1, Ordering::Relaxed);
            if u >= ex.plan_units.len() {
                break;
            }
            let mut unit = ex.plan_units[u].lock().expect("plan unit poisoned");
            let unit = &mut *unit;
            if self.profiling_on {
                // Report-only: which thread wins a unit races on the
                // cursor, so per-shard claims never enter the
                // deterministic stream.
                self.profile.steal_units += 1;
                self.profile.planned_reqs += unit.reqs.len() as u64;
            }
            unit.plans.clear();
            for req in &unit.reqs {
                unit.plans.push(
                    self.sim
                        .algorithm
                        .plan_route(&self.sim.gc, &self.view, NodeId(req.src), req.dst)
                        .ok(),
                );
            }
        }
    }

    /// Round A, owner side: account this shard's classes' planned
    /// injections. Within a class the requests are in the coordinator's
    /// node order; across classes the order differs from the sequential
    /// interleaving, which is invisible — the counters are additive, at
    /// most one injection per node per cycle touches each queue, and
    /// trace events are merged by their `(stream, node)` key.
    fn account_own_units(&mut self, cycle: u64, ex: &Exchange) {
        let (lo, hi) = self.class_range;
        for c in lo..hi {
            let mut unit = ex.plan_units[c].lock().expect("plan unit poisoned");
            let unit = &mut *unit;
            debug_assert_eq!(unit.reqs.len(), unit.plans.len());
            for (req, plan) in unit.reqs.iter().zip(unit.plans.iter_mut()) {
                self.account_injection(cycle, req, plan.take());
            }
            unit.reqs.clear();
            unit.plans.clear();
        }
    }

    /// Account one injection attempt whose planning already happened.
    fn account_injection(&mut self, cycle: u64, req: &InjectReq, plan: Option<PlannedRoute>) {
        let measuring = cycle >= self.warmup;
        let widx = (cycle / self.window) as usize;
        let src = NodeId(req.src);
        let Some(planned) = plan else {
            self.metrics.route_failures_total += 1;
            if measuring {
                self.metrics.route_failures += 1;
            }
            return;
        };
        let tree = planned.tree;
        let planned_hops = planned.route.hops() as u64;
        self.metrics.injected_total += 1;
        if self.telemetry_on {
            self.delta.injected += 1;
        }
        if measuring {
            self.metrics.injected += 1;
        }
        self.windows[widx].injected += 1;
        if self.tracing_on {
            self.events.push((
                ekey(SUB_INJECT, req.src, 0),
                TraceEvent {
                    cycle,
                    packet: req.id,
                    node: src,
                    kind: TraceEventKind::Inject {
                        dst: req.dst,
                        planned_hops,
                    },
                },
            ));
        }
        if let Some(tc) = tree {
            self.account_tree_choice(widx, tc);
            if self.tracing_on && (tc.switches > 0 || tc.exhausted) {
                self.events.push((
                    ekey(SUB_INJECT, req.src, 1),
                    TraceEvent {
                        cycle,
                        packet: req.id,
                        node: src,
                        kind: TraceEventKind::TreeSwitch {
                            tree: tc.tree,
                            switches: tc.switches,
                            exhausted: tc.exhausted,
                        },
                    },
                ));
            }
        }
        if planned_hops == 0 {
            self.metrics.delivered_total += 1;
            if self.telemetry_on {
                self.delta.delivered += 1;
            }
            if measuring {
                self.metrics.delivered += 1;
                self.metrics.latency_hist.record(0);
                self.metrics.hops_hist.record(0);
            }
            self.windows[widx].delivered += 1;
            if self.tracing_on {
                self.events.push((
                    ekey(SUB_INJECT, req.src, 2),
                    TraceEvent {
                        cycle,
                        packet: req.id,
                        node: src,
                        kind: TraceEventKind::Deliver {
                            latency: 0,
                            hops: 0,
                        },
                    },
                ));
            }
        } else {
            let vu = req.src as usize;
            let slot = self.store.alloc(req.id, cycle, planned.route);
            if self.queues.is_empty(vu) {
                self.class_occupied[vu & self.cmask] += 1;
            }
            self.class_queued[vu & self.cmask] += 1;
            self.local_queued += 1;
            self.queues.push_back(&mut self.store, vu, slot);
        }
    }

    /// The forwarding scan over this shard's own nodes, in the global
    /// rotated service order (the occupancy bitset holds only owned
    /// nodes). Fills `candidates` (blocked heads, queues untouched) and
    /// `out_moves` (per destination shard).
    fn scan(&mut self, cycle: u64) {
        let measuring = cycle >= self.warmup;
        let widx = (cycle / self.window) as usize;
        let n = self.n_nodes as usize;
        let offset = (cycle % self.n_nodes) as usize;
        let mut buf = mem::take(&mut self.scan_buf);
        self.queues.collect_occupied_rotated(offset, &mut buf);
        for &vq in &buf {
            let v = vq as usize;
            // Global service index of node v under this cycle's rotation.
            let svc = ((v + n - offset) % n) as u64;
            let Some(head) = self.queues.front(v) else {
                continue;
            };
            let from = self.store.current(head);
            let Some(to) = self.store.next_hop(head) else {
                // Already at its destination after a replan: sink it.
                let slot = self.queues.pop_front(&mut self.store, v);
                let pkt = self.store.remove(slot);
                self.class_queued[v & self.cmask] -= 1;
                if self.queues.is_empty(v) {
                    self.class_occupied[v & self.cmask] -= 1;
                }
                self.local_queued -= 1;
                self.metrics.delivered_total += 1;
                if self.telemetry_on {
                    self.delta.delivered += 1;
                }
                self.windows[widx].delivered += 1;
                if is_collective(pkt.id) {
                    self.metrics.collective_delivered += 1;
                    self.windows[widx].collective_delivered += 1;
                    if self.telemetry_on {
                        self.delta.collective_delivered += 1;
                    }
                    self.op_tracker.deliver(pkt.id, cycle);
                } else if measuring && pkt.injected_at >= self.warmup {
                    self.metrics.delivered += 1;
                    self.metrics.total_latency += cycle - pkt.injected_at;
                    self.metrics.latency_hist.record(cycle - pkt.injected_at);
                    self.metrics.hops_hist.record(pkt.hops_taken);
                    self.metrics.rerouted_hops += pkt.detour_hops();
                    if pkt.reroutes > 0 {
                        self.metrics.rerouted_packets += 1;
                    }
                }
                if self.tracing_on {
                    self.events.push((
                        ekey(SUB_SCAN, svc, 0),
                        TraceEvent {
                            cycle,
                            packet: pkt.id,
                            node: pkt.current(),
                            kind: TraceEventKind::Deliver {
                                latency: cycle - pkt.injected_at,
                                hops: pkt.hops_taken,
                            },
                        },
                    ));
                }
                continue;
            };
            let dim = (from.0 ^ to.0).trailing_zeros();
            if self.dynamic && !self.links.link_usable(from, to, dim) {
                // Recovery is resolved centrally (Round C) so view
                // mutations keep their sequential order. The queue is
                // untouched; the coordinator rules on a snapshot.
                self.candidates
                    .push((svc as u32, self.store.snapshot(head)));
                continue;
            }
            if u64::from(self.store.hops_taken[head as usize]) >= self.ttl {
                let slot = self.queues.pop_front(&mut self.store, v);
                let pkt = self.store.remove(slot);
                self.class_queued[v & self.cmask] -= 1;
                if self.queues.is_empty(v) {
                    self.class_occupied[v & self.cmask] -= 1;
                }
                self.local_queued -= 1;
                let node = pkt.current();
                self.count_drop(
                    &pkt,
                    DropCause::TtlExpired,
                    measuring,
                    cycle,
                    widx,
                    node,
                    ekey(SUB_SCAN, svc, 0),
                );
                continue;
            }
            self.metrics.forwarded_hops_total += 1;
            if self.profiling_on {
                self.cycle_hops += 1;
            }
            if self.telemetry_on {
                self.delta.dim_hops[dim as usize] += 1;
            }
            let slot = self.queues.pop_front(&mut self.store, v);
            self.class_queued[v & self.cmask] -= 1;
            if self.queues.is_empty(v) {
                self.class_occupied[v & self.cmask] -= 1;
            }
            self.local_queued -= 1;
            self.store.advance(slot);
            let injected_at = self.store.injected_at[slot as usize];
            let measured_pkt = measuring && injected_at >= self.warmup;
            if measured_pkt {
                self.metrics.total_hops += 1;
            }
            let cur = self.store.current(slot);
            if self.tracing_on {
                self.events.push((
                    ekey(SUB_MOVE, svc, 0),
                    TraceEvent {
                        cycle,
                        packet: self.store.id[slot as usize],
                        node: cur,
                        kind: TraceEventKind::Hop {
                            from: self.store.route(slot).nodes()
                                [self.store.hop_idx[slot as usize] as usize - 1],
                        },
                    },
                ));
            }
            if self.store.arrived(slot) {
                // The sender accounts the delivery — exactly the
                // sequential drain's bookkeeping, one cycle of latency
                // for the hop itself.
                self.metrics.delivered_total += 1;
                if self.telemetry_on {
                    self.delta.delivered += 1;
                }
                self.windows[widx].delivered += 1;
                let hops = u64::from(self.store.hops_taken[slot as usize]);
                if is_collective(self.store.id[slot as usize]) {
                    self.metrics.collective_delivered += 1;
                    self.windows[widx].collective_delivered += 1;
                    if self.telemetry_on {
                        self.delta.collective_delivered += 1;
                    }
                    self.op_tracker.deliver(self.store.id[slot as usize], cycle);
                } else if measured_pkt {
                    self.metrics.delivered += 1;
                    self.metrics.total_latency += cycle + 1 - injected_at;
                    self.metrics.latency_hist.record(cycle + 1 - injected_at);
                    self.metrics.hops_hist.record(hops);
                    self.metrics.rerouted_hops += self.store.detour_hops(slot);
                    if self.store.reroutes[slot as usize] > 0 {
                        self.metrics.rerouted_packets += 1;
                    }
                }
                if self.tracing_on {
                    self.events.push((
                        ekey(SUB_MOVE, svc, 1),
                        TraceEvent {
                            cycle,
                            packet: self.store.id[slot as usize],
                            node: cur,
                            kind: TraceEventKind::Deliver {
                                latency: cycle + 1 - injected_at,
                                hops,
                            },
                        },
                    ));
                }
                self.store.discard(slot);
            } else {
                let dest_shard = self.class_owner[cur.0 as usize & self.cmask];
                // Materialising moves the route (a pointer), not a clone;
                // self-destined moves round-trip through the same path so
                // the arrival merge sees one uniform stream.
                self.out_moves[dest_shard].push((svc as u32, self.store.remove(slot)));
            }
        }
        self.scan_buf = buf;
    }

    /// This shard's in-flight contribution for the cooperative exit
    /// test: packets still in its queues (candidates included) plus the
    /// non-arrived moves it is sending this cycle.
    fn contrib(&self) -> u64 {
        self.local_queued + self.out_moves.iter().map(|m| m.len() as u64).sum::<u64>()
    }

    /// Move this shard's self-destined moves into the arrival buffer.
    fn queue_self_moves(&mut self) {
        let mut own = mem::take(&mut self.out_moves[self.me]);
        self.arrivals.append(&mut own);
        self.out_moves[self.me] = own;
    }

    /// Merge all arrivals in the explicit `(service index, packet id)`
    /// order — the exact order the sequential drain pushes them — and
    /// append to the FIFO queues. The packet id tiebreak is defensive:
    /// service indices are unique network-wide by construction, but an
    /// unstable sort must never be handed a collision it could order
    /// differently across runs.
    fn push_arrivals(&mut self) {
        self.arrivals
            .sort_unstable_by_key(|&(svc, ref pkt)| (svc, pkt.id));
        for (_, pkt) in self.arrivals.drain(..) {
            let cur = pkt.current().0 as usize;
            let slot = self.store.insert(pkt);
            if self.queues.is_empty(cur) {
                self.class_occupied[cur & self.cmask] += 1;
            }
            self.class_queued[cur & self.cmask] += 1;
            self.local_queued += 1;
            self.queues.push_back(&mut self.store, cur, slot);
        }
    }

    /// Apply the coordinator's view mutations, keeping this replica's
    /// generation history identical to every other shard's.
    fn apply_view_ops(&mut self, ops: &[ViewOp]) {
        for op in ops {
            match *op {
                ViewOp::Node(n) => self.view.add_node(n),
                ViewOp::Link(l) => self.view.add_link(l),
            }
        }
    }

    /// Apply the verdicts for this shard's candidates. Drops were fully
    /// accounted by the coordinator; only the queue state changes here.
    fn apply_verdicts(&mut self, cycle: u64, verdicts: Vec<(u32, Verdict)>) {
        let n = self.n_nodes as usize;
        let offset = (cycle % self.n_nodes) as usize;
        for (svc, verdict) in verdicts {
            let v = (svc as usize + offset) % n;
            let head = self.queues.front(v).expect("candidate queue is non-empty");
            match verdict {
                Verdict::Replan(route) => {
                    self.store.replan(head, route);
                }
                Verdict::Drop => {
                    let slot = self.queues.pop_front(&mut self.store, v);
                    self.store.discard(slot);
                    self.class_queued[v & self.cmask] -= 1;
                    if self.queues.is_empty(v) {
                        self.class_occupied[v & self.cmask] -= 1;
                    }
                    self.local_queued -= 1;
                }
            }
        }
    }

    /// A barrier wait, timed when the profiler is attached: the
    /// accumulated wait is the shard's coordination overhead
    /// (report-only — wall clock).
    #[inline]
    fn barrier_wait(&mut self, ex: &Exchange) {
        if self.profiling_on {
            let t = Instant::now();
            ex.barrier.wait();
            self.profile.barrier_nanos += t.elapsed().as_nanos() as u64;
        } else {
            ex.barrier.wait();
        }
    }

    /// Pre-publish profiler accounting, called right before
    /// [`Exchange::publish_moves`] while the outgoing buffers are still
    /// full: mailbox volumes (report-only) plus this cycle's hop count,
    /// stored pre-Round-B so the coordinator can fold the deterministic
    /// global `moved` total after the barrier.
    fn note_published(&mut self, ex: &Exchange, parity: usize) {
        if !self.profiling_on {
            return;
        }
        for (r, buf) in self.out_moves.iter().enumerate() {
            let n = buf.len() as u64;
            if r == self.me {
                self.profile.moves_self += n;
            } else {
                self.profile.moves_out += n;
            }
        }
        self.profile.events_out += self.events.len() as u64;
        ex.hops[parity][self.me].store(self.cycle_hops, Ordering::Relaxed);
        self.cycle_hops = 0;
    }

    /// Round D, worker side: copy the counter delta and the owned
    /// class-range snapshot into this shard's pre-sized exchange cell
    /// (post-verdict, post-arrival — end-of-cycle state).
    fn publish_telemetry(&mut self, ex: &Exchange) {
        let (lo, hi) = self.class_range;
        let mut cell = ex.telemetry[self.me].lock().expect("telemetry poisoned");
        cell.delta.copy_from(&self.delta);
        cell.class_queued[lo..hi].copy_from_slice(&self.class_queued[lo..hi]);
        cell.class_occupied[lo..hi].copy_from_slice(&self.class_occupied[lo..hi]);
        self.delta.reset();
    }
}

/// Run the simulation over `shards > 1` lockstepped shards; the output
/// is bitwise identical to [`Simulator::run_sequential`].
pub(crate) fn run_sharded<S: TraceSink, T: TelemetrySink, P: ProfilerSink>(
    sim: &Simulator<'_>,
    shards: usize,
    sink: &mut S,
    telem: &mut T,
    prof: &mut P,
) -> ChurnReport {
    debug_assert!(shards > 1);
    let n_nodes = sim.gc.num_nodes();
    let cmask = (1usize << sim.gc.alpha()) - 1;
    let class_owner: Vec<usize> = {
        let mut owner = vec![0; cmask + 1];
        for (s, (lo, hi)) in class_ranges(cmask + 1, shards).into_iter().enumerate() {
            owner[lo..hi].fill(s);
        }
        owner
    };
    let tracing_on = sink.enabled();
    let telemetry_on = telem.enabled();
    let profiling_on = prof.enabled();
    let total_cycles = sim.config.inject_cycles + sim.config.drain_cycles;
    let inject_cycles = sim.config.inject_cycles;
    let warmup = sim.config.warmup_cycles.min(inject_cycles);
    let window = sim.config.window.max(1);

    let ex = Exchange::new(shards, cmask + 1, sim.gc.n() as usize);
    // One tree cache shared by every shard's collective planner: the
    // plan is replicated, so concurrent fills only ever race to insert
    // identical trees (losers adopt the winner's entry).
    let collective_cache = sim
        .config
        .collective
        .map(|_| Arc::new(PlanCache::new(&sim.gc)));

    std::thread::scope(|scope| {
        for me in 1..shards {
            let ex = &ex;
            let class_owner = &class_owner;
            let cache = collective_cache.clone();
            scope.spawn(move || {
                run_worker(
                    sim,
                    me,
                    shards,
                    class_owner,
                    ex,
                    tracing_on,
                    telemetry_on,
                    profiling_on,
                    cache,
                );
            });
        }
        run_coordinator(CoordinatorArgs {
            sim,
            shards,
            class_owner: &class_owner,
            ex: &ex,
            sink,
            telem,
            prof,
            n_nodes,
            total_cycles,
            inject_cycles,
            warmup,
            window,
            collective_cache,
        })
    })
}

/// A worker shard's whole run: lockstep with the coordinator, no access
/// to the sinks, pure node-local work plus the round protocol.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    sim: &Simulator<'_>,
    me: usize,
    shards: usize,
    class_owner: &[usize],
    ex: &Exchange,
    tracing_on: bool,
    telemetry_on: bool,
    profiling_on: bool,
    collective_cache: Option<Arc<PlanCache>>,
) {
    let mut shard = Shard::new(
        sim,
        me,
        shards,
        class_owner,
        tracing_on,
        telemetry_on,
        profiling_on,
        collective_cache,
    );
    let total_cycles = sim.config.inject_cycles + sim.config.drain_cycles;
    let inject_cycles = sim.config.inject_cycles;
    let run_started = profiling_on.then(Instant::now);
    for cycle in 0..total_cycles {
        let parity = (cycle & 1) as usize;
        if profiling_on {
            shard.profile.cycles = cycle + 1;
        }
        shard.begin_cycle(cycle);
        // The repair ledger and op counters are the coordinator's; a
        // worker only injects its own share of the wave.
        let _ = shard.launch_collective(cycle, inject_cycles);
        if cycle < inject_cycles {
            shard.barrier_wait(ex); // Round A: units filled by the coordinator.
            shard.plan_stolen_units(ex);
            shard.barrier_wait(ex); // Round A: every unit planned.
            shard.account_own_units(cycle, ex);
        }
        shard.scan(cycle);
        let contrib = shard.contrib();
        shard.note_published(ex, parity);
        ex.publish_moves(parity, me, &mut shard.out_moves);
        if !shard.candidates.is_empty() {
            ex.candidates[me]
                .lock()
                .expect("candidates poisoned")
                .append(&mut shard.candidates);
        }
        if tracing_on && !shard.events.is_empty() {
            ex.events[parity][me]
                .lock()
                .expect("events poisoned")
                .append(&mut shard.events);
        }
        ex.contrib[parity][me].store(contrib, Ordering::Relaxed);
        shard.barrier_wait(ex); // Round B: all mailboxes published.
        let mut total_contrib = 0u64;
        for c in &ex.contrib[parity] {
            total_contrib += c.load(Ordering::Relaxed);
        }
        shard.queue_self_moves();
        ex.drain_moves(parity, me, &mut shard.arrivals);
        shard.push_arrivals();
        let mut verdict_drops = 0u64;
        if shard.dynamic && !shard.truth.is_empty() {
            shard.barrier_wait(ex); // Round C: verdicts published.
            verdict_drops = ex.verdict_drops.load(Ordering::Relaxed);
            {
                let ops = ex.view_ops.lock().expect("view ops poisoned");
                shard.apply_view_ops(&ops);
            }
            let mine = mem::take(&mut *ex.verdicts[me].lock().expect("verdicts poisoned"));
            shard.apply_verdicts(cycle, mine);
        }
        if telemetry_on || profiling_on {
            shard.publish_telemetry(ex);
            shard.barrier_wait(ex); // Round D: all cells published.
            shard.barrier_wait(ex); // Round D: coordinator folded and sampled.
        }
        if cycle >= inject_cycles && total_contrib - verdict_drops == 0 {
            break;
        }
    }
    if let Some(t) = run_started {
        shard.profile.run_nanos = t.elapsed().as_nanos() as u64;
    }
    *ex.finals[me].lock().expect("finals poisoned") = Some((
        Box::new(shard.metrics),
        shard.windows,
        shard.op_tracker.into_ops(),
        shard.profile,
    ));
    ex.barrier.wait(); // Final reduction: all shards published.
}

struct CoordinatorArgs<'c, 's, 'a, S, T, P> {
    sim: &'s Simulator<'a>,
    shards: usize,
    class_owner: &'c [usize],
    ex: &'c Exchange,
    sink: &'c mut S,
    telem: &'c mut T,
    prof: &'c mut P,
    n_nodes: u64,
    total_cycles: u64,
    inject_cycles: u64,
    warmup: u64,
    window: u64,
    collective_cache: Option<Arc<PlanCache>>,
}

/// The coordinator: shard 0's node-local work plus everything
/// network-global — the traffic RNG, the health monitor, recovery
/// resolution, trace-stream merging, telemetry sampling, and the final
/// metric reduction.
fn run_coordinator<S: TraceSink, T: TelemetrySink, P: ProfilerSink>(
    args: CoordinatorArgs<'_, '_, '_, S, T, P>,
) -> ChurnReport {
    let CoordinatorArgs {
        sim,
        shards,
        class_owner,
        ex,
        sink,
        telem,
        prof,
        n_nodes,
        total_cycles,
        inject_cycles,
        warmup,
        window,
        collective_cache,
    } = args;
    let tracing_on = sink.enabled();
    let telemetry_on = telem.enabled();
    let profiling_on = prof.enabled();
    let mut coord = Shard::new(
        sim,
        0,
        shards,
        class_owner,
        tracing_on,
        telemetry_on,
        profiling_on,
        collective_cache,
    );
    coord.metrics.nodes = n_nodes;
    let mut repair_ledger = RepairLedger::new(1 << sim.gc.alpha());
    let mut traffic = TrafficGen::with_pattern(
        sim.config.seed,
        sim.config.injection_rate,
        sim.config.pattern,
    );
    let mut next_id = 0u64;
    let ttl = sim.config.effective_ttl();
    let ranges = class_ranges(coord.cmask + 1, shards);

    let mut monitor = FaultBudgetMonitor::for_strategy(sim.algorithm.survives_bound_exceeded());
    if let Some((from, to)) = monitor.update(&sim.gc, &coord.truth) {
        coord.metrics.health_transitions += 1;
        telem.health_transition(0, from, to);
        if tracing_on {
            sink.record(&TraceEvent {
                cycle: 0,
                packet: NETWORK_EVENT_PACKET,
                node: NodeId(0),
                kind: TraceEventKind::Health {
                    state: to,
                    faults: coord.truth.len() as u64,
                },
            });
        }
    }
    let profiling = telemetry_on || profiling_on;

    // Global end-of-cycle class snapshots for telemetry sampling,
    // assembled from every shard's Round D cells.
    let mut global_cq: Vec<u64> = vec![0; coord.cmask + 1];
    let mut global_co: Vec<u64> = vec![0; coord.cmask + 1];
    // Per-class request staging, swapped whole into the plan units each
    // cycle (the swapped-back vectors keep their capacities).
    let mut class_fill: Vec<Vec<InjectReq>> = (0..coord.cmask + 1).map(|_| Vec::new()).collect();
    let mut cycle_events: Vec<(u64, TraceEvent)> = Vec::new();
    let mut candidates: Vec<(u32, Packet)> = Vec::new();
    let mut global_in_flight = 0u64;
    let mut ended_at = total_cycles;
    let run_started = profiling_on.then(Instant::now);

    for cycle in 0..total_cycles {
        let parity = (cycle & 1) as usize;
        let measuring = cycle >= warmup;
        let widx = (cycle / window) as usize;
        let mut cycle_injected = 0u64;
        if profiling_on {
            coord.profile.cycles = cycle + 1;
        }

        // Phase 0: shard-local replica step, then the network-global
        // accounting the workers leave to the coordinator.
        let phase_started = profiling.then(Instant::now);
        let start = coord.begin_cycle(cycle);
        if start.applied > 0 {
            coord.metrics.fault_events += start.applied as u64;
            telem.fault_events(start.applied as u64);
            if let Some((from, to)) = monitor.update(&sim.gc, &coord.truth) {
                coord.metrics.health_transitions += 1;
                telem.health_transition(cycle, from, to);
                if tracing_on {
                    coord.events.push((
                        ekey(SUB_HEALTH, 0, 0),
                        TraceEvent {
                            cycle,
                            packet: NETWORK_EVENT_PACKET,
                            node: NodeId(0),
                            kind: TraceEventKind::Health {
                                state: monitor.state(),
                                faults: coord.truth.len() as u64,
                            },
                        },
                    ));
                }
            }
        }
        if start.reconverged {
            coord.metrics.reconvergences += 1;
            telem.reconvergence();
        } else if start.stale {
            coord.metrics.stale_cycles += 1;
            telem.stale_cycle();
        }
        if let Some(t) = phase_started {
            let nanos = t.elapsed().as_nanos() as u64;
            telem.phase_time(Phase::Reconvergence, nanos);
            prof.phase_time(Phase::Reconvergence, nanos);
        }

        // Round A: the coordinator alone draws the traffic stream, in
        // node order, preserving the sequential RNG sequence; packet ids
        // are preassigned per attempt. Planning is then stolen by every
        // thread at ending-class granularity.
        let phase_started = profiling.then(Instant::now);
        // Collective launch: replicated planning plus the coordinator's
        // exclusive repair-ledger accounting (so every tree transition
        // is counted exactly once, whatever the thread count).
        if let Some(outcome) = coord.launch_collective(cycle, inject_cycles) {
            match outcome {
                Some(plan) => {
                    if let Some(rep) = repair_ledger.note(&plan) {
                        if rep.rebuilt {
                            coord.metrics.tree_rebuilds += 1;
                        } else {
                            coord.metrics.tree_regrafts += 1;
                        }
                        coord.metrics.tree_lost_nodes += rep.lost_nodes;
                        telem.tree_repair(rep.rebuilt);
                        if tracing_on {
                            coord.events.push((
                                ekey(SUB_LAUNCH, 0, 0),
                                TraceEvent {
                                    cycle,
                                    packet: NETWORK_EVENT_PACKET,
                                    node: plan.root,
                                    kind: TraceEventKind::TreeRepair {
                                        regrafted: rep.regrafted_subtrees,
                                        reattached: rep.reattached_nodes,
                                        lost: rep.lost_nodes,
                                        rebuilt: rep.rebuilt,
                                    },
                                },
                            ));
                        }
                    }
                    coord.metrics.collective_ops += 1;
                }
                None => coord.metrics.collective_skipped += 1,
            }
        }
        if cycle < inject_cycles {
            for v in 0..n_nodes {
                let src = NodeId(v);
                if coord.links.node_faulty(v) || !traffic.fires() {
                    continue;
                }
                let Some(dst) = traffic.pick_dest(&sim.gc, &coord.view, src) else {
                    coord.metrics.suppressed_injections_total += 1;
                    if measuring {
                        coord.metrics.suppressed_injections += 1;
                    }
                    continue;
                };
                let id = next_id;
                next_id += 1;
                if profiling_on {
                    cycle_injected += 1;
                }
                class_fill[v as usize & coord.cmask].push(InjectReq { src: v, dst, id });
            }
            for (c, fill) in class_fill.iter_mut().enumerate() {
                let mut unit = ex.plan_units[c].lock().expect("plan unit poisoned");
                debug_assert!(unit.reqs.is_empty(), "owner must have drained last cycle");
                mem::swap(&mut unit.reqs, fill);
            }
            ex.plan_cursor.store(0, Ordering::Relaxed);
            coord.barrier_wait(ex); // Round A: units filled.
            coord.plan_stolen_units(ex);
            coord.barrier_wait(ex); // Round A: every unit planned.
            coord.account_own_units(cycle, ex);
        }
        if let Some(t) = phase_started {
            let nanos = t.elapsed().as_nanos() as u64;
            telem.phase_time(Phase::Planning, nanos);
            prof.phase_time(Phase::Planning, nanos);
        }

        // Forward scan + Round B.
        let phase_started = profiling.then(Instant::now);
        coord.scan(cycle);
        let contrib = coord.contrib();
        coord.note_published(ex, parity);
        ex.publish_moves(parity, 0, &mut coord.out_moves);
        ex.contrib[parity][0].store(contrib, Ordering::Relaxed);
        coord.barrier_wait(ex); // Round B: all mailboxes published.
        let mut total_contrib = 0u64;
        for c in &ex.contrib[parity] {
            total_contrib += c.load(Ordering::Relaxed);
        }
        // Every shard published its forwarded-hop count alongside its
        // mailboxes, so the post-Round-B sum equals the sequential
        // engine's `moves.len()` for this cycle.
        let mut cycle_moved = 0u64;
        if profiling_on {
            for h in &ex.hops[parity] {
                cycle_moved += h.load(Ordering::Relaxed);
            }
        }
        coord.queue_self_moves();
        ex.drain_moves(parity, 0, &mut coord.arrivals);
        coord.push_arrivals();

        // Round C: centralized recovery resolution in service order —
        // the exact sequential interleaving of view discovery, replan,
        // and drop accounting. Workers are parked at the Round C
        // barrier, so the shared verdict and view-op cells are the
        // coordinator's alone until it arrives there too.
        let mut verdict_drops = 0u64;
        if coord.dynamic && !coord.truth.is_empty() {
            candidates.append(&mut coord.candidates);
            for cell in ex.candidates.iter().skip(1) {
                candidates.append(&mut cell.lock().expect("candidates poisoned"));
            }
            candidates.sort_unstable_by_key(|&(svc, ref pkt)| (svc, pkt.id));
            let mut view_ops = ex.view_ops.lock().expect("view ops poisoned");
            view_ops.clear();
            let offset = (cycle % n_nodes) as usize;
            for (svc, pkt) in candidates.drain(..) {
                let node = ((svc as usize + offset) % n_nodes as usize) as u64;
                let from = pkt.current();
                let to = pkt
                    .next_hop()
                    .expect("candidates were blocked on a next hop");
                let dim = (from.0 ^ to.0).trailing_zeros();
                let op = if coord.truth.is_node_faulty(to) {
                    ViewOp::Node(to)
                } else {
                    ViewOp::Link(LinkId::new(from, dim))
                };
                match op {
                    ViewOp::Node(n) => coord.view.add_node(n),
                    ViewOp::Link(l) => coord.view.add_link(l),
                }
                view_ops.push(op);
                telem.stale_view();
                if tracing_on {
                    cycle_events.push((
                        ekey(SUB_SCAN, svc as u64, 0),
                        TraceEvent {
                            cycle,
                            packet: pkt.id,
                            node: from,
                            kind: TraceEventKind::StaleView { blocked: to },
                        },
                    ));
                }
                let verdict = if pkt.hops_taken >= ttl {
                    Err(DropCause::TtlExpired)
                } else if pkt.reroutes >= sim.config.reroute_budget {
                    Err(DropCause::Unrecoverable)
                } else {
                    match sim
                        .algorithm
                        .plan_route(&sim.gc, &coord.view, from, pkt.dest())
                    {
                        Ok(planned) => {
                            telem.reroute();
                            if tracing_on {
                                cycle_events.push((
                                    ekey(SUB_SCAN, svc as u64, 1),
                                    TraceEvent {
                                        cycle,
                                        packet: pkt.id,
                                        node: from,
                                        kind: TraceEventKind::Reroute {
                                            budget_left: sim.config.reroute_budget
                                                - (pkt.reroutes + 1),
                                        },
                                    },
                                ));
                            }
                            if let Some(tc) = planned.tree {
                                coord.account_tree_choice(widx, tc);
                                if tracing_on && (tc.switches > 0 || tc.exhausted) {
                                    cycle_events.push((
                                        ekey(SUB_SCAN, svc as u64, 2),
                                        TraceEvent {
                                            cycle,
                                            packet: pkt.id,
                                            node: from,
                                            kind: TraceEventKind::TreeSwitch {
                                                tree: tc.tree,
                                                switches: tc.switches,
                                                exhausted: tc.exhausted,
                                            },
                                        },
                                    ));
                                }
                            }
                            Ok(planned.route)
                        }
                        Err(_) => Err(DropCause::Unrecoverable),
                    }
                };
                let owner = class_owner[node as usize & coord.cmask];
                let ruling = match verdict {
                    Ok(route) => Verdict::Replan(route),
                    Err(cause) => {
                        verdict_drops += 1;
                        // The coordinator accounts every recovery drop,
                        // wherever the packet lives.
                        coord.windows[widx].dropped += 1;
                        coord.metrics.dropped_total += 1;
                        // The direct hook, not `coord.delta` — the delta
                        // is absorbed wholesale and would double count.
                        telem.drop_packet();
                        if is_collective(pkt.id) {
                            coord.metrics.collective_dropped += 1;
                            coord.op_tracker.dropped(pkt.id);
                        } else if measuring && pkt.injected_at >= warmup {
                            coord.metrics.dropped += 1;
                            match cause {
                                DropCause::TtlExpired => coord.metrics.ttl_expired += 1,
                                DropCause::Stranded => coord.metrics.dropped_stranded += 1,
                                DropCause::Unrecoverable => {
                                    coord.metrics.dropped_unrecoverable += 1;
                                }
                            }
                            if pkt.reroutes > 0 {
                                coord.metrics.rerouted_packets += 1;
                            }
                        }
                        if tracing_on {
                            cycle_events.push((
                                ekey(SUB_SCAN, svc as u64, 1),
                                TraceEvent {
                                    cycle,
                                    packet: pkt.id,
                                    node: pkt.current(),
                                    kind: TraceEventKind::Drop { cause },
                                },
                            ));
                        }
                        Verdict::Drop
                    }
                };
                ex.verdicts[owner]
                    .lock()
                    .expect("verdicts poisoned")
                    .push((svc, ruling));
            }
            drop(view_ops);
            ex.verdict_drops.store(verdict_drops, Ordering::Relaxed);
            coord.barrier_wait(ex); // Round C: verdicts published.
            let own = mem::take(&mut *ex.verdicts[0].lock().expect("verdicts poisoned"));
            coord.apply_verdicts(cycle, own);
        }
        global_in_flight = total_contrib - verdict_drops;

        // Merge the cycle's trace streams into the sequential order.
        if tracing_on {
            cycle_events.append(&mut coord.events);
            for cell in ex.events[parity].iter().skip(1) {
                cycle_events.append(&mut cell.lock().expect("events poisoned"));
            }
            cycle_events.sort_unstable_by_key(|&(key, _)| key);
            for (_, ev) in cycle_events.drain(..) {
                sink.record(&ev);
            }
        }
        if let Some(t) = phase_started {
            let nanos = t.elapsed().as_nanos() as u64;
            telem.phase_time(Phase::Forwarding, nanos);
            prof.phase_time(Phase::Forwarding, nanos);
        }

        // Round D: fold in every shard's telemetry delta and class
        // snapshot, then sample — identical window sums to the
        // sequential engine's per-event hook calls. Between the two
        // barriers the cells belong to the coordinator and all planning
        // is quiescent, so cache counters are race-free and cycle-exact.
        // The profiler rides the same round: its cycle sample wants the
        // same global class snapshot, and the gate must match the
        // workers' (`telemetry_on || profiling_on`) or they deadlock.
        if telemetry_on || profiling_on {
            let sample_started = Instant::now();
            if telemetry_on {
                telem.absorb_shard(&coord.delta);
            }
            coord.delta.reset();
            let (lo, hi) = coord.class_range;
            global_cq[lo..hi].copy_from_slice(&coord.class_queued[lo..hi]);
            global_co[lo..hi].copy_from_slice(&coord.class_occupied[lo..hi]);
            coord.barrier_wait(ex); // Round D: all cells published.
            for (s, cell) in ex.telemetry.iter().enumerate().skip(1) {
                let cell = cell.lock().expect("telemetry poisoned");
                if telemetry_on {
                    telem.absorb_shard(&cell.delta);
                }
                let (lo, hi) = ranges[s];
                global_cq[lo..hi].copy_from_slice(&cell.class_queued[lo..hi]);
                global_co[lo..hi].copy_from_slice(&cell.class_occupied[lo..hi]);
            }
            // One cache fetch serves both consumers, at the same
            // quiescent point the sequential engine reads it.
            let want_telem_cache = telemetry_on && telem.wants_sample(cycle);
            let want_prof_cache = profiling_on && prof.wants_cache(cycle);
            let cache = if want_telem_cache || want_prof_cache {
                sim.algorithm.cache_stats()
            } else {
                None
            };
            if telemetry_on {
                telem.end_cycle(CycleView {
                    cycle,
                    class_queued: &global_cq,
                    class_occupied: &global_co,
                    in_flight: global_in_flight,
                    health: monitor.state(),
                    live_faults: coord.truth.len() as u64,
                    cache: if want_telem_cache { cache } else { None },
                });
            }
            if profiling_on {
                prof.cycle_sample(&ProfSample {
                    cycle,
                    injected: cycle_injected,
                    moved: cycle_moved,
                    in_flight: global_in_flight,
                    class_queued: &global_cq,
                    class_occupied: &global_co,
                    cache: if want_prof_cache { cache } else { None },
                });
            }
            coord.barrier_wait(ex); // Round D: coordinator folded and sampled.
            let nanos = sample_started.elapsed().as_nanos() as u64;
            telem.phase_time(Phase::Telemetry, nanos);
            prof.phase_time(Phase::Telemetry, nanos);
        }

        if cycle >= inject_cycles && global_in_flight == 0 {
            ended_at = cycle + 1;
            break;
        }
    }

    if telemetry_on {
        telem.finish(CycleView {
            cycle: ended_at,
            class_queued: &global_cq,
            class_occupied: &global_co,
            in_flight: global_in_flight,
            health: monitor.state(),
            live_faults: coord.truth.len() as u64,
            cache: sim.algorithm.cache_stats(),
        });
    }

    // Reduce: the workers' whole-run metrics and windows fold into the
    // coordinator's — all additive counters, so the merged totals equal
    // the sequential engine's.
    coord.barrier_wait(ex); // Final reduction: all shards published.
    if let Some(t) = run_started {
        coord.profile.run_nanos = t.elapsed().as_nanos() as u64;
    }
    if profiling_on {
        prof.shard_profile(0, &coord.profile);
    }
    let mut metrics = coord.metrics;
    let mut windows = coord.windows;
    let mut collectives = coord.op_tracker.into_ops();
    for (s, cell) in ex.finals.iter().enumerate().skip(1) {
        let (m, w, ops, sp) = cell
            .lock()
            .expect("finals poisoned")
            .take()
            .expect("worker published its final payload");
        if profiling_on {
            prof.shard_profile(s, &sp);
        }
        metrics.absorb(&m);
        merge_windows(&mut windows, &w);
        merge_ops(&mut collectives, &ops);
    }
    if profiling_on {
        prof.finish_run(ended_at, shards);
    }
    metrics.cycles = ended_at - warmup;
    metrics.in_flight_at_end = global_in_flight;
    windows.truncate((ended_at as usize).div_ceil(window as usize));
    if let Some(last) = windows.last_mut() {
        last.end = last.end.min(ended_at);
    }
    ChurnReport {
        metrics,
        windows,
        trace: coord.injector.trace().to_vec(),
        budget: fault_budget(&sim.gc, &coord.truth),
        tree_health: sim.algorithm.tree_health(&sim.gc, &coord.truth),
        collectives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KnowledgeModel, SimConfig};
    use crate::injection::{CategoryMix, FaultKind, FaultSchedule};
    use crate::strategy::{CachedFtgcr, FaultFreeGcr, FaultTolerantGcr};
    use crate::telemetry::TelemetryCollector;
    use crate::trace::MemorySink;

    #[test]
    fn class_ranges_cover_contiguously() {
        for (nc, t) in [(4usize, 2usize), (4, 3), (16, 7), (8, 8), (2, 2)] {
            let ranges = class_ranges(nc, t);
            assert_eq!(ranges.len(), t);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges[t - 1].1, nc);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "chunks must be contiguous");
                assert!(w[0].1 > w[0].0, "every shard owns at least one class");
            }
        }
    }

    #[test]
    fn spin_barrier_synchronises_rounds() {
        use std::sync::atomic::AtomicU64;
        let barrier = SpinBarrier::new(4);
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for round in 0..100u64 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Between barriers every thread sees all 4
                        // increments of the finished round.
                        assert!(counter.load(Ordering::Relaxed) >= (round + 1) * 4);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    /// The arrival merge orders by the full `(service index, packet id)`
    /// key: artificial collisions on the service index — impossible in a
    /// real run, but exactly what an unstable sort would scramble — must
    /// come out in packet-id order.
    #[test]
    fn arrival_merge_breaks_service_ties_by_packet_id() {
        use gcube_routing::Route;
        let cfg = SimConfig::new(6, 2).with_cycles(10, 10, 0).with_rate(0.0);
        let sim = Simulator::new(cfg, &FaultFreeGcr);
        let class_owner = vec![0usize, 0];
        let mut shard = Shard::new(&sim, 0, 1, &class_owner, false, false, false, None);
        let dest = 4u64; // even node, class 0
        let mk = |id: u64| {
            let mut p = Packet::new(id, 0, Route::new(vec![NodeId(6), NodeId(dest)]));
            p.hop_idx = 1; // sitting at the destination of its hop
            p
        };
        // Same service index from "different shards", ids out of order,
        // plus a later service index that must stay last.
        shard.arrivals.push((7, mk(30)));
        shard.arrivals.push((7, mk(10)));
        shard.arrivals.push((7, mk(20)));
        shard.arrivals.push((9, mk(5)));
        shard.push_arrivals();
        let mut ids = Vec::new();
        while let Some(head) = shard.queues.front(dest as usize) {
            ids.push(shard.store.id[head as usize]);
            let slot = shard.queues.pop_front(&mut shard.store, dest as usize);
            shard.store.discard(slot);
        }
        assert_eq!(ids, vec![10, 20, 30, 5], "ties break by packet id");
    }

    fn churn_config() -> SimConfig {
        SimConfig::new(6, 2)
            .with_cycles(300, 3_000, 40)
            .with_rate(0.08)
            .with_knowledge(KnowledgeModel::PaperDelay)
            .with_reroute_budget(2)
            .with_schedule(FaultSchedule::Bernoulli {
                rate: 0.02,
                kind: FaultKind::Transient { repair_after: 60 },
                mix: CategoryMix::default(),
                node_fraction: 0.7,
            })
    }

    #[test]
    fn sharded_matches_sequential_static() {
        let sim = Simulator::new(
            SimConfig::new(6, 2)
                .with_cycles(200, 2_000, 20)
                .with_rate(0.05),
            &FaultFreeGcr,
        );
        let seq = sim.session().run();
        for threads in [2, 4] {
            let par = sim.session().threads(threads).run();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn sharded_matches_sequential_under_churn_with_observers() {
        let sim = Simulator::new(churn_config(), &FaultTolerantGcr);
        let mut seq_sink = MemorySink::new();
        let mut seq_tel = TelemetryCollector::new(sim.cube(), sim.config().telemetry_interval);
        let seq = sim
            .session()
            .trace(&mut seq_sink)
            .telemetry(&mut seq_tel)
            .run();
        assert!(seq.metrics.fault_events > 0, "churn must fire");
        for threads in [2, 3, 4] {
            let mut par_sink = MemorySink::new();
            let mut par_tel = TelemetryCollector::new(sim.cube(), sim.config().telemetry_interval);
            let par = sim
                .session()
                .threads(threads)
                .trace(&mut par_sink)
                .telemetry(&mut par_tel)
                .run();
            assert_eq!(seq, par, "report mismatch at threads={threads}");
            assert_eq!(
                seq_sink.events(),
                par_sink.events(),
                "trace mismatch at threads={threads}"
            );
            assert_eq!(
                seq_tel.to_csv(),
                par_tel.to_csv(),
                "telemetry mismatch at threads={threads}"
            );
        }
    }

    #[test]
    fn sharded_matches_sequential_with_collectives() {
        use crate::config::CollectiveOp;
        for op in [
            CollectiveOp::Broadcast,
            CollectiveOp::Multicast,
            CollectiveOp::Gather,
        ] {
            let cfg = churn_config()
                .with_collective(op)
                .with_collective_interval(40);
            let sim = Simulator::new(cfg, &FaultTolerantGcr);
            let mut seq_sink = MemorySink::new();
            let mut seq_tel = TelemetryCollector::new(sim.cube(), sim.config().telemetry_interval);
            let seq = sim
                .session()
                .trace(&mut seq_sink)
                .telemetry(&mut seq_tel)
                .run();
            assert!(seq.metrics.collective_ops > 0, "{op:?}: ops must launch");
            assert!(
                seq.metrics.collective_injected > 0,
                "{op:?}: wave must inject"
            );
            assert_eq!(
                seq.collectives.len() as u64,
                seq.metrics.collective_ops,
                "{op:?}: one record per op"
            );
            for threads in [2, 4] {
                let mut par_sink = MemorySink::new();
                let mut par_tel =
                    TelemetryCollector::new(sim.cube(), sim.config().telemetry_interval);
                let par = sim
                    .session()
                    .threads(threads)
                    .trace(&mut par_sink)
                    .telemetry(&mut par_tel)
                    .run();
                assert_eq!(seq, par, "{op:?}: report mismatch at threads={threads}");
                assert_eq!(
                    seq_sink.events(),
                    par_sink.events(),
                    "{op:?}: trace mismatch at threads={threads}"
                );
                assert_eq!(
                    seq_tel.to_csv(),
                    par_tel.to_csv(),
                    "{op:?}: telemetry mismatch at threads={threads}"
                );
            }
        }
    }

    #[test]
    fn sharded_matches_sequential_with_plan_cache() {
        let cached_a = CachedFtgcr::new();
        let sim = Simulator::new(churn_config().with_faults(2), &cached_a);
        let seq = sim.session().run();
        let cached_b = CachedFtgcr::new();
        let sim2 = Simulator::new(churn_config().with_faults(2), &cached_b);
        let par = sim2.session().threads(4).run();
        assert_eq!(seq, par, "cached strategy must shard deterministically");
    }
}
