//! The deterministic multi-threaded shard engine.
//!
//! Theorem 2 makes ending classes the natural shard key: a hop over a
//! dimension `>= α` stays inside the sender's ending class, so
//! partitioning the nodes by ending class puts every intra-class hop
//! shard-local and confines cross-shard traffic to the low `α`
//! dimensions. Each of the `T = min(threads, 2^α)` shards owns a
//! contiguous chunk of classes and runs the same cycle loop as the
//! sequential engine over its own nodes.
//!
//! # Lockstep protocol
//!
//! Shard 0 is the *coordinator* and runs on the calling thread (it alone
//! touches the caller's trace and telemetry sinks, so the worker threads
//! need no `Send` bounds on the sinks); shards `1..T` are workers on
//! `std::thread::scope` threads, one [`std::sync::mpsc`] inbox each.
//! Every cycle proceeds in barriered rounds:
//!
//! 1. **Phase 0 (replicated, no communication).** Every shard owns an
//!    identical replica of the ground truth, the routing view, and the
//!    fault injector (all seeded deterministically), so fault events,
//!    stranding of its own nodes, and view reconvergence are computed
//!    locally and identically everywhere.
//! 2. **Round A — injection.** The coordinator runs the single traffic
//!    RNG over all nodes in node order (preserving the sequential draw
//!    sequence exactly) and ships each shard the injection requests for
//!    its nodes; owners plan routes against their view replica and
//!    account the outcome.
//! 3. **Forward scan (parallel).** Each shard classifies its own queue
//!    heads. Head classification reads only the packet and the truth —
//!    never the view — so it is order-independent. Blocked heads become
//!    *recovery candidates* (shipped to the coordinator, queue
//!    untouched); everything else is delivered, dropped, or moved
//!    exactly as in the sequential scan.
//! 4. **Round B — all-to-all.** Shards exchange moved packets (tagged
//!    with their service index so arrival order reproduces the
//!    sequential drain order) plus an in-flight contribution used for
//!    the cooperative exit test; the coordinator additionally receives
//!    candidates and buffered trace events.
//! 5. **Round C — recovery resolution.** The coordinator resolves all
//!    candidates in service order against its view — exactly the
//!    sequential interleaving of local discovery and replanning — and
//!    broadcasts the verdicts plus the ordered view mutations, which
//!    every shard applies so the view replicas stay identical.
//! 6. **Round D — telemetry.** Only when a telemetry sink is attached:
//!    workers ship their per-cycle counter deltas and ending-class
//!    snapshots; the coordinator folds them in and samples.
//!
//! # Determinism
//!
//! The output is bitwise identical to [`Simulator::run_sequential`] for
//! every thread count: metrics and windows are commutative sums merged
//! at the end; trace events carry a `(stream, index, seq)` sort key that
//! reproduces the exact sequential emission order; packet ids are a pure
//! function of the traffic stream (assigned per injection attempt by the
//! coordinator); and arrival merge sorts by service index, restoring the
//! sequential FIFO push order. Wall-clock phase timings are
//! coordinator-only and never enter the deterministic exports.
//!
//! Unlike the sequential hot path, the sharded path does allocate small
//! per-cycle message batches — the price of the channels. Telemetry-off
//! and trace-off runs skip the corresponding payloads entirely.

use std::collections::VecDeque;
use std::mem;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Instant;

use gcube_routing::faults::fault_budget;
use gcube_routing::{FaultSet, Route};
use gcube_topology::{LinkId, NodeId, Topology};

use crate::engine::{sync_view, Simulator};
use crate::injection::FaultInjector;
use crate::metrics::{merge_windows, ChurnReport, Metrics, WindowStat, MAX_TREES};
use crate::packet::Packet;
use crate::strategy::TreeChoice;
use crate::telemetry::{CycleView, FaultBudgetMonitor, Phase, ShardTelemetry, TelemetrySink};
use crate::trace::{DropCause, TraceEvent, TraceEventKind, TraceSink, NETWORK_EVENT_PACKET};
use crate::traffic::TrafficGen;

/// Trace-stream tags for the per-cycle merge key, in sequential emission
/// order: network health, stranding drops, injection, forwarding-scan
/// resolutions (including recovery), move drain.
const SUB_HEALTH: u64 = 0;
const SUB_STRAND: u64 = 1;
const SUB_INJECT: u64 = 2;
const SUB_SCAN: u64 = 3;
const SUB_MOVE: u64 = 4;

/// Sort key reproducing the sequential trace order within one cycle:
/// stream tag, then node id (streams 1–2) or service index (streams
/// 3–4), then event sequence within that slot.
#[inline]
fn ekey(sub: u64, idx: u64, seq: u64) -> u64 {
    debug_assert!(idx < 1 << 40 && seq < 1 << 20);
    (sub << 60) | (idx << 20) | seq
}

/// One injection request: the coordinator drew the traffic stream, the
/// owning shard plans and accounts it.
struct InjectReq {
    src: u64,
    dst: NodeId,
    id: u64,
}

/// A routing-view mutation discovered during recovery, broadcast so all
/// view replicas apply the identical op sequence.
#[derive(Clone, Copy)]
enum ViewOp {
    Node(NodeId),
    Link(LinkId),
}

/// The coordinator's ruling on one recovery candidate. Drops are fully
/// accounted by the coordinator; the owner only mutates its queue.
enum Verdict {
    Replan(Route),
    Drop,
}

/// Round B payload: moved packets for the receiving shard, tagged with
/// the sender's service index, plus the sender's in-flight contribution.
/// Candidates and trace events ride along only towards the coordinator.
struct BatchMsg {
    from: usize,
    moves: Vec<(u32, Packet)>,
    contrib: u64,
    candidates: Vec<(u32, Packet)>,
    events: Vec<(u64, TraceEvent)>,
}

/// Round C broadcast: this shard's verdicts (in service order), the
/// global ordered view mutations, and the cycle's recovery-drop count
/// (for the cooperative exit test).
struct ResolutionMsg {
    verdicts: Vec<(u32, Verdict)>,
    view_ops: Vec<ViewOp>,
    verdict_drops: u64,
}

/// Round D payload: the worker's per-cycle counter delta and the
/// post-verdict snapshot of its owned ending-class range.
struct TelemetryMsg {
    from: usize,
    delta: ShardTelemetry,
    class_queued: Vec<u64>,
    class_occupied: Vec<u64>,
    class_start: usize,
}

/// End-of-run payload: the worker's whole-run metrics and windows,
/// reduced into the coordinator's via [`Metrics::absorb`] /
/// [`merge_windows`].
struct FinalMsg {
    metrics: Box<Metrics>,
    windows: Vec<WindowStat>,
}

enum Msg {
    Inject(Vec<InjectReq>),
    Batch(BatchMsg),
    Resolution(ResolutionMsg),
    Telemetry(TelemetryMsg),
    Final(FinalMsg),
}

/// A shard inbox with reordering: `mpsc` only guarantees per-sender
/// FIFO, so a fast peer's next-round message can arrive before a slow
/// peer's current-round one. Mismatches are stashed and replayed in
/// arrival order, which preserves each sender's FIFO stream.
struct Inbox {
    rx: Receiver<Msg>,
    pending: Vec<Msg>,
}

impl Inbox {
    fn new(rx: Receiver<Msg>) -> Inbox {
        Inbox {
            rx,
            pending: Vec::new(),
        }
    }

    fn recv_match(&mut self, mut want: impl FnMut(&Msg) -> bool) -> Msg {
        if let Some(i) = self.pending.iter().position(&mut want) {
            return self.pending.remove(i);
        }
        loop {
            let m = self.rx.recv().expect("shard peer disconnected mid-run");
            if want(&m) {
                return m;
            }
            self.pending.push(m);
        }
    }

    fn recv_inject(&mut self) -> Vec<InjectReq> {
        match self.recv_match(|m| matches!(m, Msg::Inject(_))) {
            Msg::Inject(reqs) => reqs,
            _ => unreachable!(),
        }
    }

    /// One Round B batch from a sender not yet seen this cycle.
    fn recv_batch(&mut self, seen: &mut [bool]) -> BatchMsg {
        let msg = self.recv_match(|m| matches!(m, Msg::Batch(b) if !seen[b.from]));
        match msg {
            Msg::Batch(b) => {
                seen[b.from] = true;
                b
            }
            _ => unreachable!(),
        }
    }

    fn recv_resolution(&mut self) -> ResolutionMsg {
        match self.recv_match(|m| matches!(m, Msg::Resolution(_))) {
            Msg::Resolution(r) => r,
            _ => unreachable!(),
        }
    }

    fn recv_telemetry(&mut self, seen: &mut [bool]) -> TelemetryMsg {
        let msg = self.recv_match(|m| matches!(m, Msg::Telemetry(t) if !seen[t.from]));
        match msg {
            Msg::Telemetry(t) => {
                seen[t.from] = true;
                t
            }
            _ => unreachable!(),
        }
    }

    fn recv_final(&mut self) -> FinalMsg {
        match self.recv_match(|m| matches!(m, Msg::Final(_))) {
            Msg::Final(f) => f,
            _ => unreachable!(),
        }
    }
}

/// Split `num_classes` ending classes into `shards` contiguous chunks
/// (first `num_classes % shards` chunks one class larger). Each entry is
/// the half-open class range `[lo, hi)` owned by that shard. Exported so
/// the CLI health report can print the layout.
pub fn class_ranges(num_classes: usize, shards: usize) -> Vec<(usize, usize)> {
    let base = num_classes / shards;
    let rem = num_classes % shards;
    let mut start = 0;
    (0..shards)
        .map(|s| {
            let len = base + usize::from(s < rem);
            let range = (start, start + len);
            start += len;
            range
        })
        .collect()
}

/// What phase 0 did, so the coordinator can run the network-global
/// accounting (fault-event counters, health monitor, staleness hooks)
/// exactly once.
struct CycleStart {
    applied: usize,
    reconverged: bool,
    stale: bool,
}

/// One shard's replicated state plus the node-local state it owns. Both
/// the coordinator and the workers drive one of these; everything
/// network-global (traffic RNG, health monitor, sinks, recovery
/// resolution) lives in [`run_sharded`] itself.
struct Shard<'s, 'a> {
    sim: &'s Simulator<'a>,
    me: usize,
    class_owner: &'s [usize],
    cmask: usize,
    n_nodes: u64,
    queues: Vec<VecDeque<Packet>>,
    class_queued: Vec<u64>,
    class_occupied: Vec<u64>,
    class_range: (usize, usize),
    /// Packets currently sitting in this shard's queues.
    local_queued: u64,
    truth: FaultSet,
    view: FaultSet,
    synced: (u64, u64),
    injector: FaultInjector,
    converge_at: Option<u64>,
    dynamic: bool,
    ttl: u64,
    warmup: u64,
    window: u64,
    metrics: Metrics,
    windows: Vec<WindowStat>,
    delta: ShardTelemetry,
    events: Vec<(u64, TraceEvent)>,
    candidates: Vec<(u32, Packet)>,
    out_moves: Vec<Vec<(u32, Packet)>>,
    arrivals: Vec<(u32, Packet)>,
    tracing_on: bool,
    telemetry_on: bool,
}

impl<'s, 'a> Shard<'s, 'a> {
    fn new(
        sim: &'s Simulator<'a>,
        me: usize,
        shards: usize,
        class_owner: &'s [usize],
        tracing_on: bool,
        telemetry_on: bool,
    ) -> Shard<'s, 'a> {
        let n_nodes = sim.gc.num_nodes();
        let cmask = (1usize << sim.gc.alpha()) - 1;
        let truth = sim.faults.clone();
        let view = sim.faults.clone();
        let synced = (truth.generation(), view.generation());
        Shard {
            sim,
            me,
            class_owner,
            cmask,
            n_nodes,
            queues: (0..n_nodes).map(|_| VecDeque::new()).collect(),
            class_queued: vec![0; cmask + 1],
            class_occupied: vec![0; cmask + 1],
            class_range: class_ranges(cmask + 1, shards)[me],
            local_queued: 0,
            truth,
            view,
            synced,
            injector: FaultInjector::new(&sim.gc, sim.config.schedule.clone(), sim.config.seed),
            converge_at: None,
            dynamic: !sim.config.schedule.is_none(),
            ttl: sim.config.effective_ttl(),
            warmup: sim.config.warmup_cycles.min(sim.config.inject_cycles),
            window: sim.config.window.max(1),
            metrics: Metrics::default(),
            windows: Vec::new(),
            delta: ShardTelemetry::new(sim.gc.n() as usize),
            events: Vec::new(),
            candidates: Vec::new(),
            out_moves: (0..shards).map(|_| Vec::new()).collect(),
            arrivals: Vec::new(),
            tracing_on,
            telemetry_on,
        }
    }

    #[inline]
    fn owns(&self, node: usize) -> bool {
        self.class_owner[node & self.cmask] == self.me
    }

    /// Phase 0: lazily open the cycle's window, then (dynamic runs)
    /// replicate the fault step, strand this shard's own dead queues,
    /// and advance the view-reconvergence state machine. Every shard
    /// computes the identical outcome; only the caller's coordinator
    /// instance feeds it into metrics and sinks.
    fn begin_cycle(&mut self, cycle: u64) -> CycleStart {
        let widx = (cycle / self.window) as usize;
        if self.windows.len() <= widx {
            self.windows.push(WindowStat {
                start: widx as u64 * self.window,
                end: (widx as u64 + 1) * self.window,
                ..WindowStat::default()
            });
        }
        let mut start = CycleStart {
            applied: 0,
            reconverged: false,
            stale: false,
        };
        if !self.dynamic {
            return start;
        }
        start.applied = self.injector.step(cycle, &mut self.truth);
        if start.applied > 0 {
            let measuring = cycle >= self.warmup;
            for v in 0..self.n_nodes as usize {
                if !self.owns(v)
                    || self.queues[v].is_empty()
                    || !self.truth.is_node_faulty(NodeId(v as u64))
                {
                    continue;
                }
                self.class_queued[v & self.cmask] -= self.queues[v].len() as u64;
                self.class_occupied[v & self.cmask] -= 1;
                let stranded = self.queues[v].split_off(0);
                self.local_queued -= stranded.len() as u64;
                for (seq, pkt) in stranded.into_iter().enumerate() {
                    self.count_drop(
                        &pkt,
                        DropCause::Stranded,
                        measuring,
                        cycle,
                        widx,
                        NodeId(v as u64),
                        ekey(SUB_STRAND, v as u64, seq as u64),
                    );
                }
            }
            let delay = self.sim.knowledge_delay(&self.truth);
            if delay == 0 {
                sync_view(&mut self.view, &self.truth, &mut self.synced);
            } else {
                self.converge_at = Some(cycle + delay);
            }
        }
        if let Some(t) = self.converge_at {
            if cycle >= t {
                sync_view(&mut self.view, &self.truth, &mut self.synced);
                self.converge_at = None;
                start.reconverged = true;
            } else {
                start.stale = true;
            }
        }
        start
    }

    /// Mirror of the sequential engine's `count_drop`, accounting into
    /// this shard's metrics, window, telemetry delta, and event buffer.
    #[allow(clippy::too_many_arguments)]
    fn count_drop(
        &mut self,
        pkt: &Packet,
        cause: DropCause,
        measuring: bool,
        cycle: u64,
        widx: usize,
        node: NodeId,
        key: u64,
    ) {
        self.windows[widx].dropped += 1;
        self.metrics.dropped_total += 1;
        if self.telemetry_on {
            self.delta.dropped += 1;
        }
        if measuring && pkt.injected_at >= self.warmup {
            self.metrics.dropped += 1;
            match cause {
                DropCause::TtlExpired => self.metrics.ttl_expired += 1,
                DropCause::Stranded => self.metrics.dropped_stranded += 1,
                DropCause::Unrecoverable => self.metrics.dropped_unrecoverable += 1,
            }
            if pkt.reroutes > 0 {
                self.metrics.rerouted_packets += 1;
            }
        }
        if self.tracing_on {
            self.events.push((
                key,
                TraceEvent {
                    cycle,
                    packet: pkt.id,
                    node,
                    kind: TraceEventKind::Drop { cause },
                },
            ));
        }
    }

    /// Mirror of the sequential engine's `account_tree_choice`: whole-run
    /// tree counters, the window switch series, and the telemetry delta.
    fn account_tree_choice(&mut self, widx: usize, tc: TreeChoice) {
        if tc.exhausted {
            self.metrics.tree_exhausted += 1;
        } else {
            self.metrics.tree_routes[tc.tree as usize % MAX_TREES] += 1;
        }
        self.metrics.tree_switches += u64::from(tc.switches);
        self.windows[widx].tree_switches += u64::from(tc.switches);
        if self.telemetry_on {
            self.delta.tree_switches += u64::from(tc.switches);
            if tc.exhausted {
                self.delta.tree_exhausted += 1;
            }
        }
    }

    /// Round A, owner side: plan and account this shard's injection
    /// requests in the coordinator's node order.
    fn inject(&mut self, cycle: u64, reqs: &[InjectReq]) {
        let measuring = cycle >= self.warmup;
        let widx = (cycle / self.window) as usize;
        for req in reqs {
            let src = NodeId(req.src);
            match self
                .sim
                .algorithm
                .plan_route(&self.sim.gc, &self.view, src, req.dst)
            {
                Ok(planned) => {
                    let tree = planned.tree;
                    let pkt = Packet::new(req.id, cycle, planned.route);
                    self.metrics.injected_total += 1;
                    if self.telemetry_on {
                        self.delta.injected += 1;
                    }
                    if measuring {
                        self.metrics.injected += 1;
                    }
                    self.windows[widx].injected += 1;
                    if self.tracing_on {
                        self.events.push((
                            ekey(SUB_INJECT, req.src, 0),
                            TraceEvent {
                                cycle,
                                packet: pkt.id,
                                node: src,
                                kind: TraceEventKind::Inject {
                                    dst: req.dst,
                                    planned_hops: pkt.planned_hops,
                                },
                            },
                        ));
                    }
                    if let Some(tc) = tree {
                        self.account_tree_choice(widx, tc);
                        if self.tracing_on && (tc.switches > 0 || tc.exhausted) {
                            self.events.push((
                                ekey(SUB_INJECT, req.src, 1),
                                TraceEvent {
                                    cycle,
                                    packet: pkt.id,
                                    node: src,
                                    kind: TraceEventKind::TreeSwitch {
                                        tree: tc.tree,
                                        switches: tc.switches,
                                        exhausted: tc.exhausted,
                                    },
                                },
                            ));
                        }
                    }
                    if pkt.arrived() {
                        self.metrics.delivered_total += 1;
                        if self.telemetry_on {
                            self.delta.delivered += 1;
                        }
                        if measuring {
                            self.metrics.delivered += 1;
                            self.metrics.latency_hist.record(0);
                            self.metrics.hops_hist.record(0);
                        }
                        self.windows[widx].delivered += 1;
                        if self.tracing_on {
                            self.events.push((
                                ekey(SUB_INJECT, req.src, 2),
                                TraceEvent {
                                    cycle,
                                    packet: pkt.id,
                                    node: src,
                                    kind: TraceEventKind::Deliver {
                                        latency: 0,
                                        hops: 0,
                                    },
                                },
                            ));
                        }
                    } else {
                        let vu = req.src as usize;
                        if self.queues[vu].is_empty() {
                            self.class_occupied[vu & self.cmask] += 1;
                        }
                        self.class_queued[vu & self.cmask] += 1;
                        self.local_queued += 1;
                        self.queues[vu].push_back(pkt);
                    }
                }
                Err(_) => {
                    self.metrics.route_failures_total += 1;
                    if measuring {
                        self.metrics.route_failures += 1;
                    }
                }
            }
        }
    }

    /// The forwarding scan over this shard's own nodes, in the global
    /// rotated service order. Fills `candidates` (blocked heads, queues
    /// untouched) and `out_moves` (per destination shard).
    fn scan(&mut self, cycle: u64) {
        let measuring = cycle >= self.warmup;
        let widx = (cycle / self.window) as usize;
        let n = self.n_nodes as usize;
        let offset = (cycle % self.n_nodes) as usize;
        for i in 0..n {
            let v = (i + offset) % n;
            if !self.owns(v) {
                continue;
            }
            let svc = i as u64;
            let Some(head) = self.queues[v].front() else {
                continue;
            };
            let from = head.current();
            let Some(to) = head.next_hop() else {
                // Already at its destination after a replan: sink it.
                let pkt = self.queues[v].pop_front().expect("head exists");
                self.class_queued[v & self.cmask] -= 1;
                if self.queues[v].is_empty() {
                    self.class_occupied[v & self.cmask] -= 1;
                }
                self.local_queued -= 1;
                self.metrics.delivered_total += 1;
                if self.telemetry_on {
                    self.delta.delivered += 1;
                }
                self.windows[widx].delivered += 1;
                if measuring && pkt.injected_at >= self.warmup {
                    self.metrics.delivered += 1;
                    self.metrics.total_latency += cycle - pkt.injected_at;
                    self.metrics.latency_hist.record(cycle - pkt.injected_at);
                    self.metrics.hops_hist.record(pkt.hops_taken);
                    self.metrics.rerouted_hops += pkt.detour_hops();
                    if pkt.reroutes > 0 {
                        self.metrics.rerouted_packets += 1;
                    }
                }
                if self.tracing_on {
                    self.events.push((
                        ekey(SUB_SCAN, svc, 0),
                        TraceEvent {
                            cycle,
                            packet: pkt.id,
                            node: pkt.current(),
                            kind: TraceEventKind::Deliver {
                                latency: cycle - pkt.injected_at,
                                hops: pkt.hops_taken,
                            },
                        },
                    ));
                }
                continue;
            };
            let dim = (from.0 ^ to.0).trailing_zeros();
            if self.dynamic && !self.truth.is_link_usable(LinkId::new(from, dim)) {
                // Recovery is resolved centrally (Round C) so view
                // mutations keep their sequential order. The queue is
                // untouched; the coordinator rules on a clone.
                self.candidates.push((svc as u32, head.clone()));
                continue;
            }
            if head.hops_taken >= self.ttl {
                let pkt = self.queues[v].pop_front().expect("head exists");
                self.class_queued[v & self.cmask] -= 1;
                if self.queues[v].is_empty() {
                    self.class_occupied[v & self.cmask] -= 1;
                }
                self.local_queued -= 1;
                let node = pkt.current();
                self.count_drop(
                    &pkt,
                    DropCause::TtlExpired,
                    measuring,
                    cycle,
                    widx,
                    node,
                    ekey(SUB_SCAN, svc, 0),
                );
                continue;
            }
            self.metrics.forwarded_hops_total += 1;
            if self.telemetry_on {
                self.delta.dim_hops[dim as usize] += 1;
            }
            let mut pkt = self.queues[v].pop_front().expect("head exists");
            self.class_queued[v & self.cmask] -= 1;
            if self.queues[v].is_empty() {
                self.class_occupied[v & self.cmask] -= 1;
            }
            self.local_queued -= 1;
            pkt.hop_idx += 1;
            pkt.hops_taken += 1;
            let measured_pkt = measuring && pkt.injected_at >= self.warmup;
            if measured_pkt {
                self.metrics.total_hops += 1;
            }
            if self.tracing_on {
                self.events.push((
                    ekey(SUB_MOVE, svc, 0),
                    TraceEvent {
                        cycle,
                        packet: pkt.id,
                        node: pkt.current(),
                        kind: TraceEventKind::Hop {
                            from: pkt.route.nodes()[pkt.hop_idx - 1],
                        },
                    },
                ));
            }
            if pkt.arrived() {
                // The sender accounts the delivery — exactly the
                // sequential drain's bookkeeping, one cycle of latency
                // for the hop itself.
                self.metrics.delivered_total += 1;
                if self.telemetry_on {
                    self.delta.delivered += 1;
                }
                self.windows[widx].delivered += 1;
                if measured_pkt {
                    self.metrics.delivered += 1;
                    self.metrics.total_latency += cycle + 1 - pkt.injected_at;
                    self.metrics
                        .latency_hist
                        .record(cycle + 1 - pkt.injected_at);
                    self.metrics.hops_hist.record(pkt.hops_taken);
                    self.metrics.rerouted_hops += pkt.detour_hops();
                    if pkt.reroutes > 0 {
                        self.metrics.rerouted_packets += 1;
                    }
                }
                if self.tracing_on {
                    self.events.push((
                        ekey(SUB_MOVE, svc, 1),
                        TraceEvent {
                            cycle,
                            packet: pkt.id,
                            node: pkt.current(),
                            kind: TraceEventKind::Deliver {
                                latency: cycle + 1 - pkt.injected_at,
                                hops: pkt.hops_taken,
                            },
                        },
                    ));
                }
            } else {
                let dest_shard = self.class_owner[pkt.current().0 as usize & self.cmask];
                self.out_moves[dest_shard].push((svc as u32, pkt));
            }
        }
    }

    /// This shard's in-flight contribution for the cooperative exit
    /// test: packets still in its queues (candidates included) plus the
    /// non-arrived moves it is sending this cycle.
    fn contrib(&self) -> u64 {
        self.local_queued + self.out_moves.iter().map(|m| m.len() as u64).sum::<u64>()
    }

    /// Move this shard's self-destined moves into the arrival buffer.
    fn queue_self_moves(&mut self) {
        let own = mem::take(&mut self.out_moves[self.me]);
        self.arrivals.extend(own);
    }

    /// Merge all arrivals in sender service order — the exact order the
    /// sequential drain pushes them — and append to the FIFO queues.
    fn push_arrivals(&mut self) {
        self.arrivals.sort_unstable_by_key(|&(svc, _)| svc);
        for (_, pkt) in self.arrivals.drain(..) {
            let cur = pkt.current().0 as usize;
            if self.queues[cur].is_empty() {
                self.class_occupied[cur & self.cmask] += 1;
            }
            self.class_queued[cur & self.cmask] += 1;
            self.local_queued += 1;
            self.queues[cur].push_back(pkt);
        }
    }

    /// Apply the coordinator's view mutations, keeping this replica's
    /// generation history identical to every other shard's.
    fn apply_view_ops(&mut self, ops: &[ViewOp]) {
        for op in ops {
            match *op {
                ViewOp::Node(n) => self.view.add_node(n),
                ViewOp::Link(l) => self.view.add_link(l),
            }
        }
    }

    /// Apply the verdicts for this shard's candidates. Drops were fully
    /// accounted by the coordinator; only the queue state changes here.
    fn apply_verdicts(&mut self, cycle: u64, verdicts: Vec<(u32, Verdict)>) {
        let n = self.n_nodes as usize;
        let offset = (cycle % self.n_nodes) as usize;
        for (svc, verdict) in verdicts {
            let v = (svc as usize + offset) % n;
            match verdict {
                Verdict::Replan(route) => {
                    self.queues[v]
                        .front_mut()
                        .expect("candidate queue is non-empty")
                        .replan(route);
                }
                Verdict::Drop => {
                    self.queues[v]
                        .pop_front()
                        .expect("candidate queue is non-empty");
                    self.class_queued[v & self.cmask] -= 1;
                    if self.queues[v].is_empty() {
                        self.class_occupied[v & self.cmask] -= 1;
                    }
                    self.local_queued -= 1;
                }
            }
        }
    }

    /// Round D payload: counter delta plus the owned class-range
    /// snapshot (post-verdict, post-arrival — end-of-cycle state).
    fn telemetry_msg(&mut self) -> TelemetryMsg {
        let (lo, hi) = self.class_range;
        let msg = TelemetryMsg {
            from: self.me,
            delta: self.delta.clone(),
            class_queued: self.class_queued[lo..hi].to_vec(),
            class_occupied: self.class_occupied[lo..hi].to_vec(),
            class_start: lo,
        };
        self.delta.reset();
        msg
    }
}

/// Run the simulation over `shards > 1` lockstepped shards; the output
/// is bitwise identical to [`Simulator::run_sequential`].
pub(crate) fn run_sharded<S: TraceSink, T: TelemetrySink>(
    sim: &Simulator<'_>,
    shards: usize,
    sink: &mut S,
    telem: &mut T,
) -> ChurnReport {
    debug_assert!(shards > 1);
    let n_nodes = sim.gc.num_nodes();
    let cmask = (1usize << sim.gc.alpha()) - 1;
    let class_owner: Vec<usize> = {
        let mut owner = vec![0; cmask + 1];
        for (s, (lo, hi)) in class_ranges(cmask + 1, shards).into_iter().enumerate() {
            owner[lo..hi].fill(s);
        }
        owner
    };
    let tracing_on = sink.enabled();
    let telemetry_on = telem.enabled();
    let total_cycles = sim.config.inject_cycles + sim.config.drain_cycles;
    let inject_cycles = sim.config.inject_cycles;
    let warmup = sim.config.warmup_cycles.min(inject_cycles);
    let window = sim.config.window.max(1);

    let mut txs: Vec<Sender<Msg>> = Vec::with_capacity(shards);
    let mut rxs: Vec<Receiver<Msg>> = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    let mut inboxes: Vec<Inbox> = rxs.into_iter().map(Inbox::new).collect();
    let coord_inbox = inboxes.remove(0);

    std::thread::scope(|scope| {
        for (w, inbox) in inboxes.into_iter().enumerate() {
            let me = w + 1;
            let txs = txs.clone();
            let class_owner = &class_owner;
            scope.spawn(move || {
                run_worker(
                    sim,
                    me,
                    shards,
                    class_owner,
                    txs,
                    inbox,
                    tracing_on,
                    telemetry_on,
                );
            });
        }
        run_coordinator(CoordinatorArgs {
            sim,
            shards,
            class_owner: &class_owner,
            txs,
            inbox: coord_inbox,
            sink,
            telem,
            n_nodes,
            total_cycles,
            inject_cycles,
            warmup,
            window,
        })
    })
}

/// A worker shard's whole run: lockstep with the coordinator, no access
/// to the sinks, pure node-local work plus the round protocol.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    sim: &Simulator<'_>,
    me: usize,
    shards: usize,
    class_owner: &[usize],
    txs: Vec<Sender<Msg>>,
    mut inbox: Inbox,
    tracing_on: bool,
    telemetry_on: bool,
) {
    let mut shard = Shard::new(sim, me, shards, class_owner, tracing_on, telemetry_on);
    let total_cycles = sim.config.inject_cycles + sim.config.drain_cycles;
    let mut seen = vec![false; shards];
    for cycle in 0..total_cycles {
        shard.begin_cycle(cycle);
        if cycle < sim.config.inject_cycles {
            let reqs = inbox.recv_inject();
            shard.inject(cycle, &reqs);
        }
        shard.scan(cycle);
        let contrib = shard.contrib();
        for (dest, tx) in txs.iter().enumerate() {
            if dest == me {
                continue;
            }
            let (candidates, events) = if dest == 0 {
                (
                    mem::take(&mut shard.candidates),
                    mem::take(&mut shard.events),
                )
            } else {
                (Vec::new(), Vec::new())
            };
            let _ = tx.send(Msg::Batch(BatchMsg {
                from: me,
                moves: mem::take(&mut shard.out_moves[dest]),
                contrib,
                candidates,
                events,
            }));
        }
        shard.queue_self_moves();
        seen.iter_mut().for_each(|s| *s = false);
        seen[me] = true;
        let mut total_contrib = contrib;
        for _ in 0..shards - 1 {
            let batch = inbox.recv_batch(&mut seen);
            total_contrib += batch.contrib;
            shard.arrivals.extend(batch.moves);
        }
        shard.push_arrivals();
        let mut verdict_drops = 0;
        if shard.dynamic && !shard.truth.is_empty() {
            let res = inbox.recv_resolution();
            verdict_drops = res.verdict_drops;
            shard.apply_view_ops(&res.view_ops);
            shard.apply_verdicts(cycle, res.verdicts);
        }
        if telemetry_on {
            let msg = shard.telemetry_msg();
            let _ = txs[0].send(Msg::Telemetry(msg));
        }
        let global_in_flight = total_contrib - verdict_drops;
        if cycle >= sim.config.inject_cycles && global_in_flight == 0 {
            break;
        }
    }
    let _ = txs[0].send(Msg::Final(FinalMsg {
        metrics: Box::new(shard.metrics),
        windows: shard.windows,
    }));
}

struct CoordinatorArgs<'c, 's, 'a, S, T> {
    sim: &'s Simulator<'a>,
    shards: usize,
    class_owner: &'c [usize],
    txs: Vec<Sender<Msg>>,
    inbox: Inbox,
    sink: &'c mut S,
    telem: &'c mut T,
    n_nodes: u64,
    total_cycles: u64,
    inject_cycles: u64,
    warmup: u64,
    window: u64,
}

/// The coordinator: shard 0's node-local work plus everything
/// network-global — the traffic RNG, the health monitor, recovery
/// resolution, trace-stream merging, telemetry sampling, and the final
/// metric reduction.
fn run_coordinator<S: TraceSink, T: TelemetrySink>(
    args: CoordinatorArgs<'_, '_, '_, S, T>,
) -> ChurnReport {
    let CoordinatorArgs {
        sim,
        shards,
        class_owner,
        txs,
        mut inbox,
        sink,
        telem,
        n_nodes,
        total_cycles,
        inject_cycles,
        warmup,
        window,
    } = args;
    let tracing_on = sink.enabled();
    let telemetry_on = telem.enabled();
    let mut coord = Shard::new(sim, 0, shards, class_owner, tracing_on, telemetry_on);
    coord.metrics.nodes = n_nodes;
    let mut traffic = TrafficGen::with_pattern(
        sim.config.seed,
        sim.config.injection_rate,
        sim.config.pattern,
    );
    let mut next_id = 0u64;
    let ttl = sim.config.effective_ttl();

    let mut monitor = FaultBudgetMonitor::for_strategy(sim.algorithm.survives_bound_exceeded());
    if let Some((from, to)) = monitor.update(&sim.gc, &coord.truth) {
        coord.metrics.health_transitions += 1;
        telem.health_transition(0, from, to);
        if tracing_on {
            sink.record(&TraceEvent {
                cycle: 0,
                packet: NETWORK_EVENT_PACKET,
                node: NodeId(0),
                kind: TraceEventKind::Health {
                    state: to,
                    faults: coord.truth.len() as u64,
                },
            });
        }
    }
    let profiling = telemetry_on;

    // Global end-of-cycle class snapshots for telemetry sampling,
    // assembled from every shard's Round D slices.
    let mut global_cq: Vec<u64> = vec![0; coord.cmask + 1];
    let mut global_co: Vec<u64> = vec![0; coord.cmask + 1];
    let mut inject_reqs: Vec<Vec<InjectReq>> = (0..shards).map(|_| Vec::new()).collect();
    let mut seen = vec![false; shards];
    let mut global_in_flight = 0u64;
    let mut ended_at = total_cycles;

    for cycle in 0..total_cycles {
        let measuring = cycle >= warmup;
        let widx = (cycle / window) as usize;

        // Phase 0: shard-local replica step, then the network-global
        // accounting the workers leave to the coordinator.
        let phase_started = profiling.then(Instant::now);
        let start = coord.begin_cycle(cycle);
        if start.applied > 0 {
            coord.metrics.fault_events += start.applied as u64;
            telem.fault_events(start.applied as u64);
            if let Some((from, to)) = monitor.update(&sim.gc, &coord.truth) {
                coord.metrics.health_transitions += 1;
                telem.health_transition(cycle, from, to);
                if tracing_on {
                    coord.events.push((
                        ekey(SUB_HEALTH, 0, 0),
                        TraceEvent {
                            cycle,
                            packet: NETWORK_EVENT_PACKET,
                            node: NodeId(0),
                            kind: TraceEventKind::Health {
                                state: monitor.state(),
                                faults: coord.truth.len() as u64,
                            },
                        },
                    ));
                }
            }
        }
        if start.reconverged {
            coord.metrics.reconvergences += 1;
            telem.reconvergence();
        } else if start.stale {
            coord.metrics.stale_cycles += 1;
            telem.stale_cycle();
        }
        if let Some(t) = phase_started {
            telem.phase_time(Phase::Reconvergence, t.elapsed().as_nanos() as u64);
        }

        // Round A: the coordinator alone draws the traffic stream, in
        // node order, preserving the sequential RNG sequence; owners
        // plan. Packet ids are preassigned per attempt.
        let phase_started = profiling.then(Instant::now);
        if cycle < inject_cycles {
            for v in 0..n_nodes {
                let src = NodeId(v);
                if coord.truth.is_node_faulty(src) || !traffic.fires() {
                    continue;
                }
                let Some(dst) = traffic.pick_dest(&sim.gc, &coord.view, src) else {
                    coord.metrics.suppressed_injections_total += 1;
                    if measuring {
                        coord.metrics.suppressed_injections += 1;
                    }
                    continue;
                };
                let id = next_id;
                next_id += 1;
                inject_reqs[class_owner[v as usize & coord.cmask]].push(InjectReq {
                    src: v,
                    dst,
                    id,
                });
            }
            for (s, tx) in txs.iter().enumerate().skip(1) {
                let _ = tx.send(Msg::Inject(mem::take(&mut inject_reqs[s])));
            }
            let own = mem::take(&mut inject_reqs[0]);
            coord.inject(cycle, &own);
        }
        if let Some(t) = phase_started {
            telem.phase_time(Phase::Planning, t.elapsed().as_nanos() as u64);
        }

        // Forward scan + Round B.
        let phase_started = profiling.then(Instant::now);
        coord.scan(cycle);
        let contrib = coord.contrib();
        for (dest, tx) in txs.iter().enumerate().skip(1) {
            let _ = tx.send(Msg::Batch(BatchMsg {
                from: 0,
                moves: mem::take(&mut coord.out_moves[dest]),
                contrib,
                candidates: Vec::new(),
                events: Vec::new(),
            }));
        }
        coord.queue_self_moves();
        seen.iter_mut().for_each(|s| *s = false);
        seen[0] = true;
        let mut total_contrib = contrib;
        let mut candidates: Vec<(u32, Packet)> = mem::take(&mut coord.candidates);
        let mut cycle_events: Vec<(u64, TraceEvent)> = mem::take(&mut coord.events);
        for _ in 0..shards - 1 {
            let batch = inbox.recv_batch(&mut seen);
            total_contrib += batch.contrib;
            coord.arrivals.extend(batch.moves);
            candidates.extend(batch.candidates);
            cycle_events.extend(batch.events);
        }
        coord.push_arrivals();

        // Round C: centralized recovery resolution in service order —
        // the exact sequential interleaving of view discovery, replan,
        // and drop accounting.
        let mut verdict_drops = 0u64;
        if coord.dynamic && !coord.truth.is_empty() {
            candidates.sort_unstable_by_key(|&(svc, _)| svc);
            let mut per_shard: Vec<Vec<(u32, Verdict)>> = (0..shards).map(|_| Vec::new()).collect();
            let mut view_ops: Vec<ViewOp> = Vec::new();
            let offset = (cycle % n_nodes) as usize;
            for (svc, pkt) in candidates.drain(..) {
                let node = ((svc as usize + offset) % n_nodes as usize) as u64;
                let from = pkt.current();
                let to = pkt
                    .next_hop()
                    .expect("candidates were blocked on a next hop");
                let dim = (from.0 ^ to.0).trailing_zeros();
                let op = if coord.truth.is_node_faulty(to) {
                    ViewOp::Node(to)
                } else {
                    ViewOp::Link(LinkId::new(from, dim))
                };
                match op {
                    ViewOp::Node(n) => coord.view.add_node(n),
                    ViewOp::Link(l) => coord.view.add_link(l),
                }
                view_ops.push(op);
                telem.stale_view();
                if tracing_on {
                    cycle_events.push((
                        ekey(SUB_SCAN, svc as u64, 0),
                        TraceEvent {
                            cycle,
                            packet: pkt.id,
                            node: from,
                            kind: TraceEventKind::StaleView { blocked: to },
                        },
                    ));
                }
                let verdict = if pkt.hops_taken >= ttl {
                    Err(DropCause::TtlExpired)
                } else if pkt.reroutes >= sim.config.reroute_budget {
                    Err(DropCause::Unrecoverable)
                } else {
                    let dest = *pkt.route.nodes().last().expect("routes are non-empty");
                    match sim.algorithm.plan_route(&sim.gc, &coord.view, from, dest) {
                        Ok(planned) => {
                            telem.reroute();
                            if tracing_on {
                                cycle_events.push((
                                    ekey(SUB_SCAN, svc as u64, 1),
                                    TraceEvent {
                                        cycle,
                                        packet: pkt.id,
                                        node: from,
                                        kind: TraceEventKind::Reroute {
                                            budget_left: sim.config.reroute_budget
                                                - (pkt.reroutes + 1),
                                        },
                                    },
                                ));
                            }
                            if let Some(tc) = planned.tree {
                                coord.account_tree_choice(widx, tc);
                                if tracing_on && (tc.switches > 0 || tc.exhausted) {
                                    cycle_events.push((
                                        ekey(SUB_SCAN, svc as u64, 2),
                                        TraceEvent {
                                            cycle,
                                            packet: pkt.id,
                                            node: from,
                                            kind: TraceEventKind::TreeSwitch {
                                                tree: tc.tree,
                                                switches: tc.switches,
                                                exhausted: tc.exhausted,
                                            },
                                        },
                                    ));
                                }
                            }
                            Ok(planned.route)
                        }
                        Err(_) => Err(DropCause::Unrecoverable),
                    }
                };
                match verdict {
                    Ok(route) => {
                        per_shard[class_owner[node as usize & coord.cmask]]
                            .push((svc, Verdict::Replan(route)));
                    }
                    Err(cause) => {
                        verdict_drops += 1;
                        // The coordinator accounts every recovery drop,
                        // wherever the packet lives.
                        coord.windows[widx].dropped += 1;
                        coord.metrics.dropped_total += 1;
                        telem.drop_packet();
                        if measuring && pkt.injected_at >= warmup {
                            coord.metrics.dropped += 1;
                            match cause {
                                DropCause::TtlExpired => coord.metrics.ttl_expired += 1,
                                DropCause::Stranded => coord.metrics.dropped_stranded += 1,
                                DropCause::Unrecoverable => {
                                    coord.metrics.dropped_unrecoverable += 1;
                                }
                            }
                            if pkt.reroutes > 0 {
                                coord.metrics.rerouted_packets += 1;
                            }
                        }
                        if tracing_on {
                            cycle_events.push((
                                ekey(SUB_SCAN, svc as u64, 1),
                                TraceEvent {
                                    cycle,
                                    packet: pkt.id,
                                    node: pkt.current(),
                                    kind: TraceEventKind::Drop { cause },
                                },
                            ));
                        }
                        per_shard[class_owner[node as usize & coord.cmask]]
                            .push((svc, Verdict::Drop));
                    }
                }
            }
            for (s, tx) in txs.iter().enumerate().skip(1) {
                let _ = tx.send(Msg::Resolution(ResolutionMsg {
                    verdicts: mem::take(&mut per_shard[s]),
                    view_ops: view_ops.clone(),
                    verdict_drops,
                }));
            }
            let own = mem::take(&mut per_shard[0]);
            coord.apply_verdicts(cycle, own);
        }
        global_in_flight = total_contrib - verdict_drops;

        // Merge the cycle's trace streams into the sequential order.
        if tracing_on {
            cycle_events.sort_unstable_by_key(|&(key, _)| key);
            for (_, ev) in cycle_events.drain(..) {
                sink.record(&ev);
            }
            coord.events = cycle_events; // keep the capacity
        }
        if let Some(t) = phase_started {
            telem.phase_time(Phase::Forwarding, t.elapsed().as_nanos() as u64);
        }

        // Round D: fold in every shard's telemetry delta and class
        // snapshot, then sample — identical window sums to the
        // sequential engine's per-event hook calls.
        if telemetry_on {
            let sample_started = Instant::now();
            telem.absorb_shard(&coord.delta);
            coord.delta.reset();
            let (lo, hi) = coord.class_range;
            global_cq[lo..hi].copy_from_slice(&coord.class_queued[lo..hi]);
            global_co[lo..hi].copy_from_slice(&coord.class_occupied[lo..hi]);
            seen.iter_mut().for_each(|s| *s = false);
            seen[0] = true;
            for _ in 0..shards - 1 {
                let msg = inbox.recv_telemetry(&mut seen);
                telem.absorb_shard(&msg.delta);
                let lo = msg.class_start;
                global_cq[lo..lo + msg.class_queued.len()].copy_from_slice(&msg.class_queued);
                global_co[lo..lo + msg.class_occupied.len()].copy_from_slice(&msg.class_occupied);
            }
            // All planning is quiescent at this barrier (workers are
            // blocked until the next cycle's Round A), so the cache
            // counters are race-free and cycle-exact.
            let cache = if telem.wants_sample(cycle) {
                sim.algorithm.cache_stats()
            } else {
                None
            };
            telem.end_cycle(CycleView {
                cycle,
                class_queued: &global_cq,
                class_occupied: &global_co,
                in_flight: global_in_flight,
                health: monitor.state(),
                live_faults: coord.truth.len() as u64,
                cache,
            });
            telem.phase_time(Phase::Telemetry, sample_started.elapsed().as_nanos() as u64);
        }

        if cycle >= inject_cycles && global_in_flight == 0 {
            ended_at = cycle + 1;
            break;
        }
    }

    if telemetry_on {
        telem.finish(CycleView {
            cycle: ended_at,
            class_queued: &global_cq,
            class_occupied: &global_co,
            in_flight: global_in_flight,
            health: monitor.state(),
            live_faults: coord.truth.len() as u64,
            cache: sim.algorithm.cache_stats(),
        });
    }

    // Reduce: the workers' whole-run metrics and windows fold into the
    // coordinator's — all additive counters, so the merged totals equal
    // the sequential engine's.
    let mut metrics = coord.metrics;
    let mut windows = coord.windows;
    for _ in 0..shards - 1 {
        let fin = inbox.recv_final();
        metrics.absorb(&fin.metrics);
        merge_windows(&mut windows, &fin.windows);
    }
    metrics.cycles = ended_at - warmup;
    metrics.in_flight_at_end = global_in_flight;
    windows.truncate((ended_at as usize).div_ceil(window as usize));
    if let Some(last) = windows.last_mut() {
        last.end = last.end.min(ended_at);
    }
    ChurnReport {
        metrics,
        windows,
        trace: coord.injector.trace().to_vec(),
        budget: fault_budget(&sim.gc, &coord.truth),
        tree_health: sim.algorithm.tree_health(&sim.gc, &coord.truth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KnowledgeModel, SimConfig};
    use crate::injection::{CategoryMix, FaultKind, FaultSchedule};
    use crate::strategy::{CachedFtgcr, FaultFreeGcr, FaultTolerantGcr};
    use crate::telemetry::TelemetryCollector;
    use crate::trace::MemorySink;

    #[test]
    fn class_ranges_cover_contiguously() {
        for (nc, t) in [(4usize, 2usize), (4, 3), (16, 7), (8, 8), (2, 2)] {
            let ranges = class_ranges(nc, t);
            assert_eq!(ranges.len(), t);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges[t - 1].1, nc);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "chunks must be contiguous");
                assert!(w[0].1 > w[0].0, "every shard owns at least one class");
            }
        }
    }

    fn churn_config() -> SimConfig {
        SimConfig::new(6, 2)
            .with_cycles(300, 3_000, 40)
            .with_rate(0.08)
            .with_knowledge(KnowledgeModel::PaperDelay)
            .with_reroute_budget(2)
            .with_schedule(FaultSchedule::Bernoulli {
                rate: 0.02,
                kind: FaultKind::Transient { repair_after: 60 },
                mix: CategoryMix::default(),
                node_fraction: 0.7,
            })
    }

    #[test]
    fn sharded_matches_sequential_static() {
        let sim = Simulator::new(
            SimConfig::new(6, 2)
                .with_cycles(200, 2_000, 20)
                .with_rate(0.05),
            &FaultFreeGcr,
        );
        let seq = sim.session().run();
        for threads in [2, 4] {
            let par = sim.session().threads(threads).run();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn sharded_matches_sequential_under_churn_with_observers() {
        let sim = Simulator::new(churn_config(), &FaultTolerantGcr);
        let mut seq_sink = MemorySink::new();
        let mut seq_tel = TelemetryCollector::new(sim.cube(), sim.config().telemetry_interval);
        let seq = sim
            .session()
            .trace(&mut seq_sink)
            .telemetry(&mut seq_tel)
            .run();
        assert!(seq.metrics.fault_events > 0, "churn must fire");
        for threads in [2, 3, 4] {
            let mut par_sink = MemorySink::new();
            let mut par_tel = TelemetryCollector::new(sim.cube(), sim.config().telemetry_interval);
            let par = sim
                .session()
                .threads(threads)
                .trace(&mut par_sink)
                .telemetry(&mut par_tel)
                .run();
            assert_eq!(seq, par, "report mismatch at threads={threads}");
            assert_eq!(
                seq_sink.events(),
                par_sink.events(),
                "trace mismatch at threads={threads}"
            );
            assert_eq!(
                seq_tel.to_csv(),
                par_tel.to_csv(),
                "telemetry mismatch at threads={threads}"
            );
        }
    }

    #[test]
    fn sharded_matches_sequential_with_plan_cache() {
        let cached_a = CachedFtgcr::new();
        let sim = Simulator::new(churn_config().with_faults(2), &cached_a);
        let seq = sim.session().run();
        let cached_b = CachedFtgcr::new();
        let sim2 = Simulator::new(churn_config().with_faults(2), &cached_b);
        let par = sim2.session().threads(4).run();
        assert_eq!(seq, par, "cached strategy must shard deterministically");
    }
}
