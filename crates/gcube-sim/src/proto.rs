//! Wire protocol for routing-as-a-service: newline-delimited JSON.
//!
//! The daemon ([`crate::server`]) speaks one JSON object per line, both
//! directions. This module owns everything about that surface that is
//! *not* connection handling: a small recursive-descent JSON reader
//! ([`JsonValue`] — the workspace vendors no JSON library, and the flat
//! field-splitting parser used for artifact headers cannot read nested
//! objects), the [`SimConfig`] codec, the stable spellings for fault
//! kinds and targets (shared with the CLI and the checkpoint codec), and
//! the typed [`Request`] grammar.
//!
//! Numbers ride as raw text ([`JsonValue::Num`]) until a caller asks for
//! a concrete type: `u64` seeds round-trip exactly instead of detouring
//! through `f64` and losing the top bits.

use crate::config::{CollectiveOp, KnowledgeModel, SimConfig};
use crate::injection::{CategoryMix, FaultKind, FaultSchedule, FaultTarget, TimedFault};
use crate::traffic::TrafficPattern;
use gcube_topology::{LinkId, NodeId};

// --- JSON value ---------------------------------------------------------

/// A parsed JSON value. Object fields keep their wire order (a `Vec`, not
/// a map): requests are small, and order-preservation makes round-trip
/// tests exact.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw wire text (see module docs).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in wire order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field lookup on an object (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, for [`JsonValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, for [`JsonValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64` (exact; rejects floats and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, for [`JsonValue::Arr`].
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Parse one JSON document (object, array, or scalar). Trailing
/// non-whitespace is an error — a line holds exactly one value.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| {
            c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-'
        }) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if raw.is_empty() || raw == "-" {
            return Err(format!("malformed number at byte {start}"));
        }
        // Validate eagerly so junk fails at parse time, not at access time.
        raw.parse::<f64>()
            .map_err(|_| format!("malformed number {raw:?} at byte {start}"))?;
        Ok(JsonValue::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by any writer
                            // in this workspace; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' in array, found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// Render `s` as a quoted JSON string (escaping `"`, `\`, and control
/// characters).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// --- stable spellings ---------------------------------------------------

/// `"node:V"` / `"link:LO:DIM"` — the wire and checkpoint spelling of a
/// fault target.
pub fn target_to_str(t: FaultTarget) -> String {
    match t {
        FaultTarget::Node(v) => format!("node:{}", v.0),
        FaultTarget::Link(l) => format!("link:{}:{}", l.lo.0, l.dim),
    }
}

/// Inverse of [`target_to_str`].
pub fn target_from_str(s: &str) -> Result<FaultTarget, String> {
    let mut it = s.split(':');
    let bad = || format!("bad fault target {s:?} (expected node:V or link:LO:DIM)");
    match it.next() {
        Some("node") => {
            let v: u64 = it.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
            if it.next().is_some() {
                return Err(bad());
            }
            Ok(FaultTarget::Node(NodeId(v)))
        }
        Some("link") => {
            let lo: u64 = it.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
            let dim: u32 = it.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
            if it.next().is_some() {
                return Err(bad());
            }
            Ok(FaultTarget::Link(LinkId::new(NodeId(lo), dim)))
        }
        _ => Err(bad()),
    }
}

/// `"permanent"` / `"transient:R"` / `"intermittent:D:P"` — the CLI's
/// `--fault-kind` spelling, reused on the wire and in checkpoints.
pub fn kind_to_str(k: FaultKind) -> String {
    match k {
        FaultKind::Permanent => "permanent".to_string(),
        FaultKind::Transient { repair_after } => format!("transient:{repair_after}"),
        FaultKind::Intermittent { down_for, period } => {
            format!("intermittent:{down_for}:{period}")
        }
    }
}

/// Inverse of [`kind_to_str`].
pub fn kind_from_str(s: &str) -> Result<FaultKind, String> {
    let bad =
        || format!("bad fault kind {s:?} (expected permanent, transient:R, or intermittent:D:P)");
    let mut it = s.split(':');
    match it.next() {
        Some("permanent") if it.next().is_none() => Ok(FaultKind::Permanent),
        Some("transient") => {
            let repair_after = it.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
            if it.next().is_some() {
                return Err(bad());
            }
            Ok(FaultKind::Transient { repair_after })
        }
        Some("intermittent") => {
            let down_for: u64 = it.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
            let period: u64 = it.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
            if it.next().is_some() || period <= down_for {
                return Err(bad());
            }
            Ok(FaultKind::Intermittent { down_for, period })
        }
        _ => Err(bad()),
    }
}

/// Stable lower-snake name of a traffic pattern.
pub fn pattern_to_str(p: TrafficPattern) -> &'static str {
    match p {
        TrafficPattern::Uniform => "uniform",
        TrafficPattern::BitComplement => "bit_complement",
        TrafficPattern::BitReversal => "bit_reversal",
        TrafficPattern::Transpose => "transpose",
    }
}

/// Inverse of [`pattern_to_str`].
pub fn pattern_from_str(s: &str) -> Result<TrafficPattern, String> {
    match s {
        "uniform" => Ok(TrafficPattern::Uniform),
        "bit_complement" => Ok(TrafficPattern::BitComplement),
        "bit_reversal" => Ok(TrafficPattern::BitReversal),
        "transpose" => Ok(TrafficPattern::Transpose),
        other => Err(format!("unknown traffic pattern {other:?}")),
    }
}

/// Stable lower-snake name of a knowledge model.
pub fn knowledge_to_str(k: KnowledgeModel) -> &'static str {
    match k {
        KnowledgeModel::Oracle => "oracle",
        KnowledgeModel::PaperDelay => "paper_delay",
        KnowledgeModel::Measured => "measured",
    }
}

/// Inverse of [`knowledge_to_str`].
pub fn knowledge_from_str(s: &str) -> Result<KnowledgeModel, String> {
    match s {
        "oracle" => Ok(KnowledgeModel::Oracle),
        "paper_delay" => Ok(KnowledgeModel::PaperDelay),
        "measured" => Ok(KnowledgeModel::Measured),
        other => Err(format!("unknown knowledge model {other:?}")),
    }
}

// --- SimConfig codec ----------------------------------------------------

fn schedule_to_json(s: &FaultSchedule) -> String {
    match s {
        FaultSchedule::None => "{\"type\":\"none\"}".to_string(),
        FaultSchedule::Bernoulli {
            rate,
            kind,
            mix,
            node_fraction,
        } => format!(
            "{{\"type\":\"bernoulli\",\"rate\":{rate},\"kind\":{},\
             \"mix\":[{},{},{}],\"node_fraction\":{node_fraction}}}",
            quote(&kind_to_str(*kind)),
            mix.a,
            mix.b,
            mix.c,
        ),
        FaultSchedule::Scripted(events) => {
            let items: Vec<String> = events
                .iter()
                .map(|e| {
                    format!(
                        "{{\"cycle\":{},\"target\":{},\"kind\":{}}}",
                        e.cycle,
                        quote(&target_to_str(e.target)),
                        quote(&kind_to_str(e.kind)),
                    )
                })
                .collect();
            format!("{{\"type\":\"scripted\",\"events\":[{}]}}", items.join(","))
        }
    }
}

fn schedule_from_json(v: &JsonValue) -> Result<FaultSchedule, String> {
    let ty = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or("schedule needs a \"type\"")?;
    match ty {
        "none" => Ok(FaultSchedule::None),
        "bernoulli" => {
            let rate = v
                .get("rate")
                .and_then(JsonValue::as_f64)
                .ok_or("bernoulli schedule needs a numeric \"rate\"")?;
            let kind = match v.get("kind").and_then(JsonValue::as_str) {
                Some(s) => kind_from_str(s)?,
                None => FaultKind::Permanent,
            };
            let mix = match v.get("mix").and_then(JsonValue::as_arr) {
                Some([a, b, c]) => CategoryMix {
                    a: a.as_f64().ok_or("mix entries must be numbers")?,
                    b: b.as_f64().ok_or("mix entries must be numbers")?,
                    c: c.as_f64().ok_or("mix entries must be numbers")?,
                },
                Some(_) => return Err("mix must have exactly three weights".into()),
                None => CategoryMix::default(),
            };
            let node_fraction = match v.get("node_fraction") {
                Some(f) => f.as_f64().ok_or("node_fraction must be a number")?,
                None => 0.5,
            };
            Ok(FaultSchedule::Bernoulli {
                rate,
                kind,
                mix,
                node_fraction,
            })
        }
        "scripted" => {
            let events = v
                .get("events")
                .and_then(JsonValue::as_arr)
                .ok_or("scripted schedule needs an \"events\" array")?;
            let mut out = Vec::with_capacity(events.len());
            for e in events {
                out.push(TimedFault {
                    cycle: e
                        .get("cycle")
                        .and_then(JsonValue::as_u64)
                        .ok_or("scripted event needs a \"cycle\"")?,
                    target: target_from_str(
                        e.get("target")
                            .and_then(JsonValue::as_str)
                            .ok_or("scripted event needs a \"target\"")?,
                    )?,
                    kind: match e.get("kind").and_then(JsonValue::as_str) {
                        Some(s) => kind_from_str(s)?,
                        None => FaultKind::Permanent,
                    },
                });
            }
            Ok(FaultSchedule::Scripted(out))
        }
        other => Err(format!("unknown schedule type {other:?}")),
    }
}

/// Render a full [`SimConfig`] as one JSON object (every field explicit,
/// so a config round-trips bit-exactly — `f64` fields use Rust's
/// shortest-round-trip formatting).
pub fn config_to_json(cfg: &SimConfig) -> String {
    let opt_u64 = |o: Option<u64>| o.map_or("null".to_string(), |v| v.to_string());
    format!(
        "{{\"n\":{},\"modulus\":{},\"inject_cycles\":{},\"drain_cycles\":{},\
         \"warmup_cycles\":{},\"rate\":{},\"seed\":{},\"faults\":{},\
         \"pattern\":{},\"buffer_capacity\":{},\"schedule\":{},\
         \"knowledge\":{},\"reroute_budget\":{},\"ttl\":{},\"window\":{},\
         \"telemetry_interval\":{},\"collective\":{},\"collective_interval\":{}}}",
        cfg.n,
        cfg.modulus,
        cfg.inject_cycles,
        cfg.drain_cycles,
        cfg.warmup_cycles,
        cfg.injection_rate,
        cfg.seed,
        cfg.faulty_nodes,
        quote(pattern_to_str(cfg.pattern)),
        opt_u64(cfg.buffer_capacity.map(|c| c as u64)),
        schedule_to_json(&cfg.schedule),
        quote(knowledge_to_str(cfg.knowledge)),
        cfg.reroute_budget,
        opt_u64(cfg.ttl),
        cfg.window,
        cfg.telemetry_interval,
        cfg.collective
            .map_or("null".to_string(), |op| quote(op.as_str())),
        cfg.collective_interval,
    )
}

/// Parse a [`SimConfig`] from a JSON object. `n` and `modulus` are
/// required; every other field defaults as [`SimConfig::new`] does, so a
/// client only sends what it overrides.
pub fn config_from_json(v: &JsonValue) -> Result<SimConfig, String> {
    let req_u64 = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("config needs an integer {key:?}"))
    };
    let n = req_u64("n")?;
    if n > u64::from(u32::MAX) {
        return Err("config field \"n\" out of range".into());
    }
    let mut cfg = SimConfig::new(n as u32, req_u64("modulus")?);
    let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
        match v.get(key) {
            None => Ok(None),
            Some(JsonValue::Null) => Ok(None),
            Some(f) => f
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("config field {key:?} must be an integer")),
        }
    };
    if let Some(x) = opt_u64("inject_cycles")? {
        cfg.inject_cycles = x;
    }
    if let Some(x) = opt_u64("drain_cycles")? {
        cfg.drain_cycles = x;
    }
    if let Some(x) = opt_u64("warmup_cycles")? {
        cfg.warmup_cycles = x;
    }
    if let Some(f) = v.get("rate") {
        cfg.injection_rate = f.as_f64().ok_or("config field \"rate\" must be a number")?;
    }
    if let Some(x) = opt_u64("seed")? {
        cfg.seed = x;
    }
    if let Some(x) = opt_u64("faults")? {
        cfg.faulty_nodes = x as usize;
    }
    if let Some(p) = v.get("pattern") {
        cfg.pattern = pattern_from_str(
            p.as_str()
                .ok_or("config field \"pattern\" must be a string")?,
        )?;
    }
    cfg.buffer_capacity = opt_u64("buffer_capacity")?.map(|c| c as usize);
    if let Some(s) = v.get("schedule") {
        if !s.is_null() {
            cfg.schedule = schedule_from_json(s)?;
        }
    }
    if let Some(k) = v.get("knowledge") {
        cfg.knowledge = knowledge_from_str(
            k.as_str()
                .ok_or("config field \"knowledge\" must be a string")?,
        )?;
    }
    if let Some(x) = opt_u64("reroute_budget")? {
        if x > u64::from(u32::MAX) {
            return Err("config field \"reroute_budget\" out of range".into());
        }
        cfg.reroute_budget = x as u32;
    }
    cfg.ttl = opt_u64("ttl")?;
    if let Some(x) = opt_u64("window")? {
        cfg.window = x.max(1);
    }
    if let Some(x) = opt_u64("telemetry_interval")? {
        cfg.telemetry_interval = x.max(1);
    }
    if let Some(c) = v.get("collective") {
        cfg.collective = match c {
            JsonValue::Null => None,
            JsonValue::Str(s) => Some(
                CollectiveOp::from_str(s).ok_or_else(|| format!("unknown collective op {s:?}"))?,
            ),
            _ => return Err("config field \"collective\" must be a string or null".into()),
        };
    }
    if let Some(x) = opt_u64("collective_interval")? {
        cfg.collective_interval = x.max(1);
    }
    Ok(cfg)
}

// --- requests -----------------------------------------------------------

/// One parsed daemon request — the typed form of a wire line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Admit a new session and build its engine at cycle 0.
    Open {
        /// Caller-chosen session id (any non-empty string).
        session: String,
        /// Full run configuration.
        config: SimConfig,
        /// Strategy wire name (`auto` resolves against the config).
        strategy: String,
        /// Spanning trees per bundle (multitree only).
        trees: usize,
    },
    /// Advance a session by `cycles` cycles (or to completion, if it
    /// finishes earlier).
    Step {
        /// Target session.
        session: String,
        /// Cycles to execute (default 1).
        cycles: u64,
        /// Step a suspended (bound-exceeded) session anyway.
        force: bool,
    },
    /// Run a session to completion.
    Run {
        /// Target session.
        session: String,
        /// Run a suspended (bound-exceeded) session anyway.
        force: bool,
    },
    /// Serialize a session's engine state to a checkpoint file.
    Snapshot {
        /// Target session.
        session: String,
        /// Checkpoint file path (created/truncated).
        path: String,
    },
    /// Rebuild a session from a checkpoint file. Restoring onto an
    /// existing session rewinds it (its recorded trace is truncated to
    /// the checkpoint's mark); restoring onto a new id starts the record
    /// at the checkpoint.
    Restore {
        /// Session to create or rewind.
        session: String,
        /// Checkpoint file path.
        path: String,
    },
    /// Stream a session's telemetry samples collected so far.
    Telemetry {
        /// Target session.
        session: String,
    },
    /// Finish a session: optionally write its trace / telemetry
    /// artifacts (CLI-identical JSONL), report final metrics, free it.
    Close {
        /// Target session.
        session: String,
        /// Trace artifact path (JSONL, meta-stamped) — omitted: not written.
        trace: Option<String>,
        /// Telemetry artifact path (JSONL, meta-stamped) — omitted: not
        /// written.
        telemetry: Option<String>,
    },
    /// Stop the daemon (open sessions are discarded).
    Shutdown,
}

impl Request {
    /// Parse one wire line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = parse_json(line)?;
        let op = v
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or("request needs an \"op\" string")?;
        let session = || -> Result<String, String> {
            let s = v
                .get("session")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{op:?} request needs a \"session\" string"))?;
            if s.is_empty() {
                return Err("\"session\" must be non-empty".into());
            }
            Ok(s.to_string())
        };
        let path = || -> Result<String, String> {
            Ok(v.get("path")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{op:?} request needs a \"path\" string"))?
                .to_string())
        };
        let force = v.get("force").and_then(JsonValue::as_bool).unwrap_or(false);
        match op {
            "open" => {
                let config = config_from_json(
                    v.get("config")
                        .ok_or("open request needs a \"config\" object")?,
                )?;
                let strategy = v
                    .get("strategy")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("auto")
                    .to_string();
                let trees = v.get("trees").and_then(JsonValue::as_u64).unwrap_or(2) as usize;
                Ok(Request::Open {
                    session: session()?,
                    config,
                    strategy,
                    trees,
                })
            }
            "step" => Ok(Request::Step {
                session: session()?,
                cycles: v.get("cycles").and_then(JsonValue::as_u64).unwrap_or(1),
                force,
            }),
            "run" => Ok(Request::Run {
                session: session()?,
                force,
            }),
            "snapshot" => Ok(Request::Snapshot {
                session: session()?,
                path: path()?,
            }),
            "restore" => Ok(Request::Restore {
                session: session()?,
                path: path()?,
            }),
            "telemetry" => Ok(Request::Telemetry {
                session: session()?,
            }),
            "close" => {
                let opt = |key: &str| v.get(key).and_then(JsonValue::as_str).map(str::to_string);
                Ok(Request::Close {
                    session: session()?,
                    trace: opt("trace"),
                    telemetry: opt("telemetry"),
                })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parses_nested_values() {
        let v = parse_json(r#"{"a":[1,2.5,null,true],"b":{"c":"x\"y"},"d":-3}"#).unwrap();
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-3.0));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert!(arr[2].is_null());
        assert_eq!(arr[3].as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
    }

    #[test]
    fn json_u64_fidelity() {
        let v = parse_json(&format!("{{\"seed\":{}}}", u64::MAX)).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn json_rejects_junk() {
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("nul").is_err());
        assert!(parse_json("\"open").is_err());
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let v = parse_json(&quote("a\"b\\c\nd\t\u{1}")).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\t\u{1}"));
    }

    #[test]
    fn spellings_round_trip() {
        for t in [
            FaultTarget::Node(NodeId(42)),
            FaultTarget::Link(LinkId::new(NodeId(6), 3)),
        ] {
            assert_eq!(target_from_str(&target_to_str(t)).unwrap(), t);
        }
        for k in [
            FaultKind::Permanent,
            FaultKind::Transient { repair_after: 9 },
            FaultKind::Intermittent {
                down_for: 3,
                period: 10,
            },
        ] {
            assert_eq!(kind_from_str(&kind_to_str(k)).unwrap(), k);
        }
        assert!(kind_from_str("intermittent:10:3").is_err(), "period > down");
        for p in [
            TrafficPattern::Uniform,
            TrafficPattern::BitComplement,
            TrafficPattern::BitReversal,
            TrafficPattern::Transpose,
        ] {
            assert_eq!(pattern_from_str(pattern_to_str(p)).unwrap(), p);
        }
        for m in [
            KnowledgeModel::Oracle,
            KnowledgeModel::PaperDelay,
            KnowledgeModel::Measured,
        ] {
            assert_eq!(knowledge_from_str(knowledge_to_str(m)).unwrap(), m);
        }
    }

    #[test]
    fn config_round_trips_all_schedules() {
        let base = SimConfig::new(8, 2)
            .with_rate(0.0125)
            .with_cycles(300, 6_000, 30)
            .with_seed(u64::MAX - 7)
            .with_faults(2)
            .with_pattern(TrafficPattern::Transpose)
            .with_knowledge(KnowledgeModel::PaperDelay)
            .with_reroute_budget(5)
            .with_ttl(77)
            .with_window(50)
            .with_telemetry_interval(25)
            .with_collective(CollectiveOp::Gather)
            .with_collective_interval(40);
        for schedule in [
            FaultSchedule::None,
            FaultSchedule::Bernoulli {
                rate: 0.001,
                kind: FaultKind::Transient { repair_after: 60 },
                mix: CategoryMix {
                    a: 1.0,
                    b: 0.5,
                    c: 0.25,
                },
                node_fraction: 0.75,
            },
            FaultSchedule::Scripted(vec![
                TimedFault {
                    cycle: 100,
                    target: FaultTarget::Node(NodeId(9)),
                    kind: FaultKind::Permanent,
                },
                TimedFault {
                    cycle: 150,
                    target: FaultTarget::Link(LinkId::new(NodeId(4), 2)),
                    kind: FaultKind::Intermittent {
                        down_for: 5,
                        period: 20,
                    },
                },
            ]),
        ] {
            let cfg = base.clone().with_schedule(schedule);
            let text = config_to_json(&cfg);
            let back = config_from_json(&parse_json(&text).unwrap()).unwrap();
            assert_eq!(back, cfg, "codec must round-trip: {text}");
        }
    }

    #[test]
    fn config_defaults_partial_input() {
        let v = parse_json(r#"{"n":6,"modulus":2,"rate":0.05}"#).unwrap();
        let cfg = config_from_json(&v).unwrap();
        let expected = SimConfig::new(6, 2).with_rate(0.05);
        assert_eq!(cfg, expected);
        assert!(config_from_json(&parse_json(r#"{"n":6}"#).unwrap()).is_err());
    }

    #[test]
    fn requests_parse() {
        let r = Request::parse(
            r#"{"op":"open","session":"s1","strategy":"multitree","trees":3,"config":{"n":6,"modulus":2}}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Open {
                session: "s1".into(),
                config: SimConfig::new(6, 2),
                strategy: "multitree".into(),
                trees: 3,
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"step","session":"s1"}"#).unwrap(),
            Request::Step {
                session: "s1".into(),
                cycles: 1,
                force: false,
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"run","session":"s1","force":true}"#).unwrap(),
            Request::Run {
                session: "s1".into(),
                force: true,
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"close","session":"s1","trace":"/tmp/t.jsonl"}"#).unwrap(),
            Request::Close {
                session: "s1".into(),
                trace: Some("/tmp/t.jsonl".into()),
                telemetry: None,
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert!(Request::parse(r#"{"op":"warp"}"#).is_err());
        assert!(
            Request::parse(r#"{"op":"step"}"#).is_err(),
            "missing session"
        );
        assert!(
            Request::parse(r#"{"op":"open","session":"","config":{"n":6,"modulus":2}}"#).is_err()
        );
    }
}
