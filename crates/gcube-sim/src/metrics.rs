//! Simulation metrics, matching the paper's definitions, plus the
//! degradation counters introduced by dynamic fault injection and the
//! latency/hop distributions introduced by the flight recorder.

use gcube_routing::faults::FaultBudget;

use crate::injection::FaultEvent;

/// Buckets per [`Histogram`]: exact counts for values `0..=62`, one
/// saturated bucket for everything larger.
pub const HIST_BUCKETS: usize = 64;

/// Fixed-bucket histogram of small non-negative integers (latencies in
/// cycles, hop counts).
///
/// Buckets `0..HIST_BUCKETS-1` each hold exactly one value; the last
/// bucket absorbs every sample `>= HIST_BUCKETS - 1`. The exact maximum is
/// tracked separately, so a percentile that resolves to the saturated top
/// bucket reports that maximum (an upper bound) rather than a fabricated
/// mid-bucket value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = (v as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw bucket counts (`buckets()[i]` counts samples equal to `i`;
    /// the last bucket counts samples `>= HIST_BUCKETS - 1`).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// The `p`-quantile (`p` in `[0, 1]`): the smallest value `v` whose
    /// cumulative count reaches `ceil(p * count)`. `None` when empty.
    /// A quantile landing in the saturated top bucket returns the exact
    /// maximum (see the type docs).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return if i == HIST_BUCKETS - 1 {
                    Some(self.max)
                } else {
                    Some(i as u64)
                };
            }
        }
        Some(self.max)
    }

    /// Median (`None` when empty).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    /// 95th percentile (`None` when empty).
    pub fn p95(&self) -> Option<u64> {
        self.percentile(0.95)
    }

    /// 99th percentile (`None` when empty).
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// Rebuild a histogram from its checkpointed parts ([`buckets`],
    /// [`count`], [`max`] — the full observable state).
    ///
    /// [`buckets`]: Histogram::buckets
    /// [`count`]: Histogram::count
    /// [`max`]: Histogram::max
    pub fn from_parts(buckets: [u64; HIST_BUCKETS], count: u64, max: u64) -> Histogram {
        Histogram {
            buckets,
            count,
            max,
        }
    }

    /// Merge another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

/// Aggregated statistics of one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Packets injected (after warm-up).
    pub injected: u64,
    /// Packets delivered (after warm-up).
    pub delivered: u64,
    /// Sum of per-packet latencies, in cycles (`LP` in the paper).
    pub total_latency: u64,
    /// Sum of per-packet hop counts.
    pub total_hops: u64,
    /// Packets whose route computation failed (unreachable destination) —
    /// zero under the theorem preconditions.
    pub route_failures: u64,
    /// Injections refused because the source buffer was full (only with
    /// finite buffers; zero under the paper's eager-readership model).
    pub blocked_injections: u64,
    /// Injections suppressed because the source had no usable destination:
    /// a permutation pattern whose partner is faulty (or is the source
    /// itself), or — under extreme fault density — no healthy destination
    /// at all. Offered load silently shrank by this many packets; compare
    /// throughput across fault counts with this column in view.
    pub suppressed_injections: u64,
    /// Packets still in flight when the simulation ended.
    pub in_flight_at_end: u64,
    /// Measured cycles (`PT` basis; injection + drain, minus warm-up).
    pub cycles: u64,
    /// Nodes in the network.
    pub nodes: u64,
    /// Packets lost to dynamic faults, all causes. Partitioned exactly by
    /// [`Metrics::dropped_stranded`], [`Metrics::dropped_unrecoverable`]
    /// and [`Metrics::ttl_expired`].
    pub dropped: u64,
    /// Drops caused specifically by the per-packet hop budget.
    pub ttl_expired: u64,
    /// Drops of packets stranded on a node that died under them.
    pub dropped_stranded: u64,
    /// Drops with no recovery route or an exhausted re-route budget.
    pub dropped_unrecoverable: u64,
    /// Packets that performed at least one mid-flight local re-route,
    /// counted once per packet at its final resolution (delivery or
    /// drop), not per re-route event.
    pub rerouted_packets: u64,
    /// Extra links traversed beyond each delivered packet's
    /// injection-time plan (detour cost of online recovery).
    pub rerouted_hops: u64,
    /// Fault events (failures and repairs) applied during the run.
    pub fault_events: u64,
    /// Whole-run count of link traversals, warm-up included. Unlike
    /// [`Metrics::total_hops`] (summed per delivered packet, measured
    /// window only), this ledger counts every forwarded hop the moment it
    /// happens — the ground truth the telemetry per-dimension counters
    /// must reconcile with exactly.
    pub forwarded_hops_total: u64,
    /// Times the fault-budget monitor changed health state (including
    /// the initial classification when the run starts faulty).
    pub health_transitions: u64,
    /// Cycles during which at least one fault was not yet reflected in
    /// the routing view (stale-knowledge exposure).
    pub stale_cycles: u64,
    /// Times the routing view re-converged onto the ground truth.
    pub reconvergences: u64,
    /// Whole-run packet ledger: every successful injection, warm-up
    /// included (unlike [`Metrics::injected`], which starts counting
    /// after warm-up). Satisfies
    /// `injected_total == delivered_total + dropped_total + in_flight_at_end`.
    pub injected_total: u64,
    /// Whole-run deliveries, warm-up included.
    pub delivered_total: u64,
    /// Whole-run drops, warm-up included.
    pub dropped_total: u64,
    /// Whole-run route-computation failures, warm-up included. These
    /// never create packets, so they sit outside the conservation sum.
    pub route_failures_total: u64,
    /// Whole-run suppressed injections, warm-up included. Like route
    /// failures, these never create packets.
    pub suppressed_injections_total: u64,
    /// Whole-run plans carried by each spanning tree, indexed by tree
    /// (multitree strategies only — zero elsewhere). Exhausted plans
    /// (FTGCR fallback) are *not* counted here; see
    /// [`Metrics::tree_exhausted`].
    pub tree_routes: [u64; MAX_TREES],
    /// Whole-run tree switches: trees tried and rejected (faulty
    /// component on the path) before a plan succeeded, summed over all
    /// planning sites (injection and mid-flight recovery).
    pub tree_switches: u64,
    /// Whole-run plans that exhausted every spanning tree and fell back
    /// to FTGCR.
    pub tree_exhausted: u64,
    /// Collective operations launched (broadcast / multicast / gather
    /// rounds). Counted once per operation by the launch site, so the
    /// sharded reduction leaves worker copies at zero.
    pub collective_ops: u64,
    /// Collective operations skipped because every candidate root in the
    /// scheduled ending class was faulty at launch time.
    pub collective_skipped: u64,
    /// Per-target collective packets injected, whole run. These live in
    /// the `*_total` ledger too (conservation covers them) but are kept
    /// out of the measured unicast counters — a broadcast wave would
    /// otherwise swamp the paper-figure latency statistics.
    pub collective_injected: u64,
    /// Collective packets delivered, whole run.
    pub collective_delivered: u64,
    /// Collective packets dropped, whole run.
    pub collective_dropped: u64,
    /// Broadcast-tree repairs that re-grafted orphaned subtrees in place
    /// (the cheap path: the cached tree survived the fault generation).
    pub tree_regrafts: u64,
    /// Broadcast-tree repairs that rebuilt the tree from scratch (root
    /// died, or no cached tree existed for the new fault generation).
    pub tree_rebuilds: u64,
    /// Healthy nodes a tree repair could not reattach (disconnected from
    /// the root by the live fault set), summed over repairs.
    pub tree_lost_nodes: u64,
    /// Distribution of per-packet latency over measured deliveries — the
    /// tail the paper's average hides (B/C-fault degradation spikes).
    pub latency_hist: Histogram,
    /// Distribution of per-packet hop counts over measured deliveries.
    pub hops_hist: Histogram,
}

/// Width of the per-tree counter array in [`Metrics`] — an upper bound on
/// any strategy's tree count, not a promise that many can be built.
pub const MAX_TREES: usize = 8;

impl Metrics {
    /// Average latency `LP / DP` in cycles (paper, Figure 5/7).
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Throughput `DP / PT` in packets per cycle (paper, Figure 6/8).
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / self.cycles as f64
        }
    }

    /// `log2` of throughput — the paper plots this "for clearer
    /// comparison". `None` when nothing was delivered (the logarithm is
    /// undefined); callers decide how to render that, instead of having
    /// `-inf` leak into tables.
    pub fn log2_throughput(&self) -> Option<f64> {
        let t = self.throughput();
        (t > 0.0).then(|| t.log2())
    }

    /// Mean hops per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Measured packets that reached a final outcome: delivered or
    /// dropped. Excludes packets still in flight at the end of the run.
    pub fn resolved(&self) -> u64 {
        self.delivered + self.dropped
    }

    /// Delivered over *resolved* (delivered + dropped) packets; `1.0`
    /// when nothing resolved. Sums to one with [`Metrics::drop_ratio`],
    /// even on runs that end with packets still in flight. (The old
    /// injected-based semantics live on as
    /// [`Metrics::completion_ratio`].)
    pub fn delivery_ratio(&self) -> f64 {
        let resolved = self.resolved();
        if resolved == 0 {
            1.0
        } else {
            self.delivered as f64 / resolved as f64
        }
    }

    /// Dropped over resolved packets; complements
    /// [`Metrics::delivery_ratio`] to one.
    pub fn drop_ratio(&self) -> f64 {
        let resolved = self.resolved();
        if resolved == 0 {
            0.0
        } else {
            self.dropped as f64 / resolved as f64
        }
    }

    /// Delivered over *injected* packets — the pre-flight-recorder
    /// `delivery_ratio` semantics, kept because it is the right question
    /// for "did the run drain?": packets still in flight at the end count
    /// against it, so it under-reports on truncated runs by design.
    pub fn completion_ratio(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Fold another ledger into this one: every additive counter is
    /// summed and the histograms merged bucket-wise. The shard engine
    /// reduces worker ledgers with this; the run-level fields the
    /// coordinator sets exactly once — [`Metrics::nodes`],
    /// [`Metrics::cycles`], [`Metrics::in_flight_at_end`] — are left
    /// untouched.
    pub fn absorb(&mut self, other: &Metrics) {
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.total_latency += other.total_latency;
        self.total_hops += other.total_hops;
        self.route_failures += other.route_failures;
        self.blocked_injections += other.blocked_injections;
        self.suppressed_injections += other.suppressed_injections;
        self.dropped += other.dropped;
        self.ttl_expired += other.ttl_expired;
        self.dropped_stranded += other.dropped_stranded;
        self.dropped_unrecoverable += other.dropped_unrecoverable;
        self.rerouted_packets += other.rerouted_packets;
        self.rerouted_hops += other.rerouted_hops;
        self.fault_events += other.fault_events;
        self.forwarded_hops_total += other.forwarded_hops_total;
        self.health_transitions += other.health_transitions;
        self.stale_cycles += other.stale_cycles;
        self.reconvergences += other.reconvergences;
        self.injected_total += other.injected_total;
        self.delivered_total += other.delivered_total;
        self.dropped_total += other.dropped_total;
        self.route_failures_total += other.route_failures_total;
        self.suppressed_injections_total += other.suppressed_injections_total;
        for (a, b) in self.tree_routes.iter_mut().zip(&other.tree_routes) {
            *a += b;
        }
        self.tree_switches += other.tree_switches;
        self.tree_exhausted += other.tree_exhausted;
        self.collective_ops += other.collective_ops;
        self.collective_skipped += other.collective_skipped;
        self.collective_injected += other.collective_injected;
        self.collective_delivered += other.collective_delivered;
        self.collective_dropped += other.collective_dropped;
        self.tree_regrafts += other.tree_regrafts;
        self.tree_rebuilds += other.tree_rebuilds;
        self.tree_lost_nodes += other.tree_lost_nodes;
        self.latency_hist.merge(&other.latency_hist);
        self.hops_hist.merge(&other.hops_hist);
    }

    /// Fraction of collective targets reached:
    /// `collective_delivered / collective_injected`, `1.0` when no
    /// collective traffic ran. Injected-based (not resolved-based) on
    /// purpose: a collective target the packet never reached is a
    /// coverage failure whether the packet died or is still in flight.
    pub fn collective_coverage(&self) -> f64 {
        if self.collective_injected == 0 {
            1.0
        } else {
            self.collective_delivered as f64 / self.collective_injected as f64
        }
    }
}

/// Sum `src`'s per-window counters into `dst`, index by index. The shard
/// engine gives every shard identical window boundaries, so the reduction
/// is positional; boundary agreement is checked in debug builds.
pub fn merge_windows(dst: &mut [WindowStat], src: &[WindowStat]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        debug_assert_eq!((d.start, d.end), (s.start, s.end));
        d.injected += s.injected;
        d.delivered += s.delivered;
        d.dropped += s.dropped;
        d.tree_switches += s.tree_switches;
        d.collective_delivered += s.collective_delivered;
    }
}

/// Sum `src`'s per-operation collective counters into `dst`, index by
/// index. Every shard plans the same operations from the same replicated
/// view, so the per-op metadata (`op`, `root`, `started`, `expected`) is
/// identical across shards and only the outcome counters differ; the
/// agreement is checked in debug builds.
pub fn merge_ops(dst: &mut [OpStat], src: &[OpStat]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        debug_assert_eq!(
            (d.op, d.root, d.started, d.expected),
            (s.op, s.root, s.started, s.expected)
        );
        d.delivered += s.delivered;
        d.dropped += s.dropped;
        d.last_delivery = d.last_delivery.max(s.last_delivery);
    }
}

/// Delivery statistics over one fixed-width window of cycles.
///
/// Windows count *every* packet (warm-up included) because they describe
/// the run as a time series, not the steady state.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowStat {
    /// First cycle of the window (inclusive).
    pub start: u64,
    /// Last cycle of the window (exclusive).
    pub end: u64,
    /// Packets injected during the window.
    pub injected: u64,
    /// Packets delivered during the window (counted at arrival time).
    pub delivered: u64,
    /// Packets dropped during the window.
    pub dropped: u64,
    /// Tree switches performed by plans computed during the window
    /// (multitree strategies only).
    pub tree_switches: u64,
    /// Collective packets delivered during the window — the coverage
    /// time series a clustered fault burst dents and a tree repair
    /// restores.
    pub collective_delivered: u64,
}

impl WindowStat {
    /// Delivered over delivered-plus-dropped: the fraction of packets
    /// *resolved* this window that made it. `1.0` for an idle window.
    pub fn delivery_ratio(&self) -> f64 {
        let resolved = self.delivered + self.dropped;
        if resolved == 0 {
            1.0
        } else {
            self.delivered as f64 / resolved as f64
        }
    }
}

/// One collective operation's completion record.
///
/// `Metrics` stays `Copy`, so the variable-length per-op series lives on
/// [`ChurnReport`] instead: one entry per launched operation, in launch
/// order (skipped operations — dead root class — produce no entry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStat {
    /// Operation index in the launch schedule.
    pub op: u64,
    /// Concrete root node the operation ran from.
    pub root: u64,
    /// Cycle the operation's packets were injected.
    pub started: u64,
    /// Targets covered by the (repaired) broadcast tree at launch: the
    /// packets injected for this operation.
    pub expected: u64,
    /// Targets actually reached.
    pub delivered: u64,
    /// Per-target packets lost en route (faults after launch).
    pub dropped: u64,
    /// Cycle of the last delivery — `started` subtracted gives the
    /// operation's completion time.
    pub last_delivery: u64,
}

impl OpStat {
    /// Fraction of this operation's targets reached.
    pub fn coverage(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.expected as f64
        }
    }
}

/// Full outcome of a churn run: steady-state metrics plus the time
/// series needed to see degradation and recovery.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChurnReport {
    /// Aggregate counters (identical to what [`crate::Simulator::run`]
    /// returns).
    pub metrics: Metrics,
    /// Per-window delivery statistics, in time order.
    pub windows: Vec<WindowStat>,
    /// Every fault event applied, in application order.
    pub trace: Vec<FaultEvent>,
    /// The network's final Theorem-3 standing: the live fault set at the
    /// end of the run classified against `N(α,k)` / `T(GC)`.
    pub budget: FaultBudget,
    /// Per-tree survival against the final fault set — `Some` only when
    /// the run's strategy routes over independent spanning trees.
    pub tree_health: Option<Vec<gcube_routing::multitree::TreeHealth>>,
    /// Per-operation collective completion records, in launch order.
    /// Empty unless the run carried collective traffic.
    pub collectives: Vec<OpStat>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let m = Metrics {
            injected: 100,
            delivered: 80,
            total_latency: 800,
            total_hops: 400,
            in_flight_at_end: 20,
            cycles: 40,
            nodes: 64,
            ..Metrics::default()
        };
        assert_eq!(m.avg_latency(), 10.0);
        assert_eq!(m.throughput(), 2.0);
        assert_eq!(m.log2_throughput(), Some(1.0));
        assert_eq!(m.avg_hops(), 5.0);
        // Ratios are over resolved packets: the 20 still in flight no
        // longer distort them.
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.drop_ratio(), 0.0);
        // The old injected-based semantics survive under their real name.
        assert_eq!(m.completion_ratio(), 0.8);
    }

    #[test]
    fn ratios_sum_to_one_with_drops() {
        let m = Metrics {
            injected: 100,
            delivered: 60,
            dropped: 20,
            in_flight_at_end: 20,
            ..Metrics::default()
        };
        assert_eq!(m.resolved(), 80);
        assert!((m.delivery_ratio() - 0.75).abs() < 1e-12);
        assert!((m.drop_ratio() - 0.25).abs() < 1e-12);
        assert!((m.delivery_ratio() + m.drop_ratio() - 1.0).abs() < 1e-12);
        assert!((m.completion_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_safe() {
        let m = Metrics::default();
        assert_eq!(m.avg_latency(), 0.0);
        assert_eq!(m.throughput(), 0.0);
        assert_eq!(m.log2_throughput(), None, "no -inf for silent runs");
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.drop_ratio(), 0.0);
        assert_eq!(m.completion_ratio(), 1.0);
        assert_eq!(m.latency_hist.percentile(0.5), None);
    }

    #[test]
    fn window_ratio_counts_resolved_packets() {
        let w = WindowStat {
            start: 0,
            end: 100,
            injected: 50,
            delivered: 30,
            dropped: 10,
            ..WindowStat::default()
        };
        assert!((w.delivery_ratio() - 0.75).abs() < 1e-12);
        let idle = WindowStat {
            start: 100,
            end: 200,
            ..WindowStat::default()
        };
        assert_eq!(idle.delivery_ratio(), 1.0);
    }

    #[test]
    fn absorb_sums_counters_and_merges_histograms() {
        let mut coord = Metrics {
            nodes: 64,
            cycles: 100,
            in_flight_at_end: 3,
            injected: 10,
            delivered: 8,
            injected_total: 12,
            delivered_total: 9,
            ..Metrics::default()
        };
        let mut worker = Metrics {
            injected: 5,
            delivered: 4,
            total_latency: 40,
            dropped: 1,
            ttl_expired: 1,
            dropped_total: 1,
            injected_total: 5,
            delivered_total: 4,
            forwarded_hops_total: 20,
            ..Metrics::default()
        };
        worker.latency_hist.record(10);
        coord.absorb(&worker);
        assert_eq!(coord.injected, 15);
        assert_eq!(coord.delivered, 12);
        assert_eq!(coord.total_latency, 40);
        assert_eq!(coord.dropped, 1);
        assert_eq!(coord.injected_total, 17);
        assert_eq!(coord.latency_hist.count(), 1);
        // Coordinator-owned run-level fields stay put.
        assert_eq!(coord.nodes, 64);
        assert_eq!(coord.cycles, 100);
        assert_eq!(coord.in_flight_at_end, 3);
    }

    #[test]
    fn merge_windows_is_positional() {
        let mut dst = vec![
            WindowStat {
                start: 0,
                end: 50,
                injected: 3,
                delivered: 2,
                dropped: 0,
                tree_switches: 3,
                collective_delivered: 1,
            },
            WindowStat {
                start: 50,
                end: 100,
                injected: 1,
                delivered: 1,
                dropped: 1,
                tree_switches: 1,
                collective_delivered: 0,
            },
        ];
        let src = vec![
            WindowStat {
                start: 0,
                end: 50,
                injected: 2,
                delivered: 1,
                dropped: 1,
                tree_switches: 2,
                collective_delivered: 2,
            },
            WindowStat {
                start: 50,
                end: 100,
                injected: 0,
                delivered: 2,
                dropped: 0,
                tree_switches: 0,
                collective_delivered: 0,
            },
        ];
        merge_windows(&mut dst, &src);
        assert_eq!(
            (dst[0].injected, dst[0].delivered, dst[0].dropped),
            (5, 3, 1)
        );
        assert_eq!(
            (dst[1].injected, dst[1].delivered, dst[1].dropped),
            (1, 3, 1)
        );
        assert_eq!((dst[0].start, dst[0].end), (0, 50), "boundaries untouched");
        assert_eq!(
            (dst[0].tree_switches, dst[1].tree_switches),
            (5, 1),
            "tree switches merge positionally too"
        );
        assert_eq!(
            (dst[0].collective_delivered, dst[1].collective_delivered),
            (3, 0),
            "collective deliveries merge positionally too"
        );
    }

    #[test]
    fn merge_ops_sums_outcomes_and_keeps_metadata() {
        let meta = OpStat {
            op: 2,
            root: 5,
            started: 100,
            expected: 60,
            ..OpStat::default()
        };
        let mut dst = vec![OpStat {
            delivered: 20,
            dropped: 1,
            last_delivery: 104,
            ..meta
        }];
        let src = vec![OpStat {
            delivered: 39,
            dropped: 0,
            last_delivery: 107,
            ..meta
        }];
        merge_ops(&mut dst, &src);
        assert_eq!(dst[0].delivered, 59);
        assert_eq!(dst[0].dropped, 1);
        assert_eq!(dst[0].last_delivery, 107);
        assert_eq!((dst[0].op, dst[0].root, dst[0].started), (2, 5, 100));
        assert!((dst[0].coverage() - 59.0 / 60.0).abs() < 1e-12);
        assert_eq!(
            OpStat::default().coverage(),
            1.0,
            "empty op covers trivially"
        );
    }

    #[test]
    fn collective_coverage_is_injected_based() {
        let m = Metrics {
            collective_injected: 200,
            collective_delivered: 199,
            collective_dropped: 1,
            ..Metrics::default()
        };
        assert!((m.collective_coverage() - 0.995).abs() < 1e-12);
        assert_eq!(Metrics::default().collective_coverage(), 1.0);
    }

    #[test]
    fn absorb_sums_collective_counters() {
        let mut a = Metrics {
            collective_ops: 3,
            collective_injected: 10,
            tree_regrafts: 1,
            ..Metrics::default()
        };
        let b = Metrics {
            collective_injected: 5,
            collective_delivered: 5,
            collective_dropped: 2,
            collective_skipped: 1,
            tree_rebuilds: 2,
            tree_lost_nodes: 4,
            ..Metrics::default()
        };
        a.absorb(&b);
        assert_eq!(a.collective_ops, 3);
        assert_eq!(a.collective_injected, 15);
        assert_eq!(a.collective_delivered, 5);
        assert_eq!(a.collective_dropped, 2);
        assert_eq!(a.collective_skipped, 1);
        assert_eq!(
            (a.tree_regrafts, a.tree_rebuilds, a.tree_lost_nodes),
            (1, 2, 4)
        );
    }

    // --- histogram ------------------------------------------------------

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn histogram_single_sample() {
        let mut h = Histogram::new();
        h.record(17);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 17);
        // Every quantile of a single sample is that sample.
        assert_eq!(h.percentile(0.0), Some(17));
        assert_eq!(h.p50(), Some(17));
        assert_eq!(h.p99(), Some(17));
        assert_eq!(h.percentile(1.0), Some(17));
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new();
        // 0 and HIST_BUCKETS-2 are the last exactly-resolved values;
        // HIST_BUCKETS-1 and beyond share the saturated top bucket.
        let top = (HIST_BUCKETS - 1) as u64;
        h.record(0);
        h.record(top - 1);
        h.record(top);
        h.record(top + 100);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[HIST_BUCKETS - 2], 1);
        assert_eq!(h.buckets()[HIST_BUCKETS - 1], 2, "top bucket saturates");
        assert_eq!(h.max(), top + 100);
    }

    #[test]
    fn histogram_percentiles_exact_region() {
        let mut h = Histogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.percentile(0.1), Some(1));
        assert_eq!(h.percentile(1.0), Some(10));
        assert_eq!(h.p99(), Some(10));
    }

    #[test]
    fn histogram_saturated_top_reports_exact_max() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(500); // deep in the saturated bucket
        assert_eq!(h.p50(), Some(5));
        // p99's rank-2 sample sits in the top bucket: report the true max,
        // not the bucket's lower bound.
        assert_eq!(h.p99(), Some(500));
        assert_eq!(h.max(), 500);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        a.record(2);
        b.record(2);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 100);
        assert_eq!(a.buckets()[2], 2);
        assert_eq!(a.p50(), Some(2));
    }
}
