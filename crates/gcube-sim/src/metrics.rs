//! Simulation metrics, matching the paper's definitions.

/// Aggregated statistics of one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Packets injected (after warm-up).
    pub injected: u64,
    /// Packets delivered (after warm-up).
    pub delivered: u64,
    /// Sum of per-packet latencies, in cycles (`LP` in the paper).
    pub total_latency: u64,
    /// Sum of per-packet hop counts.
    pub total_hops: u64,
    /// Packets whose route computation failed (unreachable destination) —
    /// zero under the theorem preconditions.
    pub route_failures: u64,
    /// Injections refused because the source buffer was full (only with
    /// finite buffers; zero under the paper's eager-readership model).
    pub blocked_injections: u64,
    /// Packets still in flight when the simulation ended.
    pub in_flight_at_end: u64,
    /// Measured cycles (`PT` basis; injection + drain, minus warm-up).
    pub cycles: u64,
    /// Nodes in the network.
    pub nodes: u64,
}

impl Metrics {
    /// Average latency `LP / DP` in cycles (paper, Figure 5/7).
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Throughput `DP / PT` in packets per cycle (paper, Figure 6/8).
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / self.cycles as f64
        }
    }

    /// `log2` of throughput — the paper plots this "for clearer comparison".
    pub fn log2_throughput(&self) -> f64 {
        let t = self.throughput();
        if t > 0.0 {
            t.log2()
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Mean hops per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Delivery ratio among injected packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let m = Metrics {
            injected: 100,
            delivered: 80,
            total_latency: 800,
            total_hops: 400,
            route_failures: 0,
            blocked_injections: 0,
            in_flight_at_end: 20,
            cycles: 40,
            nodes: 64,
        };
        assert_eq!(m.avg_latency(), 10.0);
        assert_eq!(m.throughput(), 2.0);
        assert_eq!(m.log2_throughput(), 1.0);
        assert_eq!(m.avg_hops(), 5.0);
        assert_eq!(m.delivery_ratio(), 0.8);
    }

    #[test]
    fn empty_run_is_safe() {
        let m = Metrics::default();
        assert_eq!(m.avg_latency(), 0.0);
        assert_eq!(m.throughput(), 0.0);
        assert_eq!(m.log2_throughput(), f64::NEG_INFINITY);
        assert_eq!(m.delivery_ratio(), 1.0);
    }
}
