//! Simulation metrics, matching the paper's definitions, plus the
//! degradation counters introduced by dynamic fault injection.

use crate::injection::FaultEvent;

/// Aggregated statistics of one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Packets injected (after warm-up).
    pub injected: u64,
    /// Packets delivered (after warm-up).
    pub delivered: u64,
    /// Sum of per-packet latencies, in cycles (`LP` in the paper).
    pub total_latency: u64,
    /// Sum of per-packet hop counts.
    pub total_hops: u64,
    /// Packets whose route computation failed (unreachable destination) —
    /// zero under the theorem preconditions.
    pub route_failures: u64,
    /// Injections refused because the source buffer was full (only with
    /// finite buffers; zero under the paper's eager-readership model).
    pub blocked_injections: u64,
    /// Packets still in flight when the simulation ended.
    pub in_flight_at_end: u64,
    /// Measured cycles (`PT` basis; injection + drain, minus warm-up).
    pub cycles: u64,
    /// Nodes in the network.
    pub nodes: u64,
    /// Packets lost to dynamic faults, all causes: stranded on a node
    /// that died, no recovery route, re-route budget exhausted, or TTL
    /// expiry (the latter also counted in [`Metrics::ttl_expired`]).
    pub dropped: u64,
    /// Drops caused specifically by the per-packet hop budget.
    pub ttl_expired: u64,
    /// Packets that performed at least one mid-flight local re-route,
    /// counted once per packet at its final resolution (delivery or
    /// drop), not per re-route event.
    pub rerouted_packets: u64,
    /// Extra links traversed beyond each delivered packet's
    /// injection-time plan (detour cost of online recovery).
    pub rerouted_hops: u64,
    /// Fault events (failures and repairs) applied during the run.
    pub fault_events: u64,
    /// Cycles during which at least one fault was not yet reflected in
    /// the routing view (stale-knowledge exposure).
    pub stale_cycles: u64,
    /// Times the routing view re-converged onto the ground truth.
    pub reconvergences: u64,
    /// Whole-run packet ledger: every successful injection, warm-up
    /// included (unlike [`Metrics::injected`], which starts counting
    /// after warm-up). Satisfies
    /// `injected_total == delivered_total + dropped_total + in_flight_at_end`.
    pub injected_total: u64,
    /// Whole-run deliveries, warm-up included.
    pub delivered_total: u64,
    /// Whole-run drops, warm-up included.
    pub dropped_total: u64,
    /// Whole-run route-computation failures, warm-up included. These
    /// never create packets, so they sit outside the conservation sum.
    pub route_failures_total: u64,
}

impl Metrics {
    /// Average latency `LP / DP` in cycles (paper, Figure 5/7).
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Throughput `DP / PT` in packets per cycle (paper, Figure 6/8).
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / self.cycles as f64
        }
    }

    /// `log2` of throughput — the paper plots this "for clearer
    /// comparison". `None` when nothing was delivered (the logarithm is
    /// undefined); callers decide how to render that, instead of having
    /// `-inf` leak into tables.
    pub fn log2_throughput(&self) -> Option<f64> {
        let t = self.throughput();
        (t > 0.0).then(|| t.log2())
    }

    /// Mean hops per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Delivery ratio among injected packets.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Fraction of injected packets lost to dynamic faults.
    pub fn drop_ratio(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.dropped as f64 / self.injected as f64
        }
    }
}

/// Delivery statistics over one fixed-width window of cycles.
///
/// Windows count *every* packet (warm-up included) because they describe
/// the run as a time series, not the steady state.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowStat {
    /// First cycle of the window (inclusive).
    pub start: u64,
    /// Last cycle of the window (exclusive).
    pub end: u64,
    /// Packets injected during the window.
    pub injected: u64,
    /// Packets delivered during the window (counted at arrival time).
    pub delivered: u64,
    /// Packets dropped during the window.
    pub dropped: u64,
}

impl WindowStat {
    /// Delivered over delivered-plus-dropped: the fraction of packets
    /// *resolved* this window that made it. `1.0` for an idle window.
    pub fn delivery_ratio(&self) -> f64 {
        let resolved = self.delivered + self.dropped;
        if resolved == 0 {
            1.0
        } else {
            self.delivered as f64 / resolved as f64
        }
    }
}

/// Full outcome of a churn run: steady-state metrics plus the time
/// series needed to see degradation and recovery.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChurnReport {
    /// Aggregate counters (identical to what [`crate::Simulator::run`]
    /// returns).
    pub metrics: Metrics,
    /// Per-window delivery statistics, in time order.
    pub windows: Vec<WindowStat>,
    /// Every fault event applied, in application order.
    pub trace: Vec<FaultEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let m = Metrics {
            injected: 100,
            delivered: 80,
            total_latency: 800,
            total_hops: 400,
            in_flight_at_end: 20,
            cycles: 40,
            nodes: 64,
            ..Metrics::default()
        };
        assert_eq!(m.avg_latency(), 10.0);
        assert_eq!(m.throughput(), 2.0);
        assert_eq!(m.log2_throughput(), Some(1.0));
        assert_eq!(m.avg_hops(), 5.0);
        assert_eq!(m.delivery_ratio(), 0.8);
        assert_eq!(m.drop_ratio(), 0.0);
    }

    #[test]
    fn empty_run_is_safe() {
        let m = Metrics::default();
        assert_eq!(m.avg_latency(), 0.0);
        assert_eq!(m.throughput(), 0.0);
        assert_eq!(m.log2_throughput(), None, "no -inf for silent runs");
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.drop_ratio(), 0.0);
    }

    #[test]
    fn window_ratio_counts_resolved_packets() {
        let w = WindowStat {
            start: 0,
            end: 100,
            injected: 50,
            delivered: 30,
            dropped: 10,
        };
        assert!((w.delivery_ratio() - 0.75).abs() < 1e-12);
        let idle = WindowStat {
            start: 100,
            end: 200,
            ..WindowStat::default()
        };
        assert_eq!(idle.delivery_ratio(), 1.0);
    }
}
