//! Routing as a service: the `gcube serve` daemon.
//!
//! The daemon multiplexes many independent simulation sessions — each one
//! a sequential [`EngineCore`] paused between cycles — behind the
//! newline-delimited JSON protocol of [`crate::proto`]. Parallelism comes
//! from running *sessions* concurrently (a bounded worker budget, see
//! below), never from sharding one session: every session is the
//! sequential reference engine, so its artifacts are bitwise identical to
//! a single-run `gcube run` with the same config and seed.
//!
//! ## Concurrency model
//!
//! Sessions live in a shared map of `Arc<Mutex<SessionEntry>>`. A request
//! locks only its own session, so N connections advancing N different
//! sessions proceed in parallel; two requests for the *same* session
//! serialize on its mutex. Cycle-advancing work (`step`, `run`, `close`)
//! additionally holds one of `workers` execution permits — when all
//! permits are busy the daemon answers a typed `overloaded` backpressure
//! error instead of queueing unboundedly.
//!
//! ## Admission control
//!
//! Admission rides the Theorem-3 fault-budget monitor:
//!
//! * `open` refuses any session past `max_sessions` (code
//!   `admission_refused`). A session whose *configured* fault set already
//!   exceeds the bound is admitted — the client asked for a best-effort
//!   run — but its `service_class` says `"degraded"`, not `"normal"`.
//! * A running session whose fault schedule pushes it **past** the bound
//!   it was admitted under is *suspended*: `step` and `run` answer
//!   `bound_exceeded` (override with `"force": true`); `snapshot`,
//!   `telemetry`, and `close` stay available, so the client can
//!   checkpoint or drain a suspended run. Strategies that survive the
//!   bound (multitree) degrade instead of suspending.
//!
//! Every session-scoped response is stamped with the session's
//! [`ArtifactMeta`] provenance under `"meta"` — the same header its
//! artifacts carry, so a client can bind responses to artifact files
//! without trusting its own bookkeeping.
//!
//! ## Snapshot / restore
//!
//! `snapshot` serializes the paused engine ([`Checkpoint`]) with
//! `trace_mark` = events recorded so far. `restore` onto the *same*
//! session rewinds it: the in-memory trace is truncated back to the mark,
//! so artifacts written at `close` equal an uninterrupted run's bit for
//! bit. `restore` onto a *new* session id replays the identical suffix
//! but records only from the checkpoint onward (prefix lives with
//! whoever wrote the checkpoint). Telemetry across a restore boundary is
//! suffix-only in both cases: the collector restarts at the checkpoint
//! (window counters only cover re-executed cycles) — the deterministic
//! trace and final metrics are unaffected, since observers never steer.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::artifact::{ArtifactKind, ArtifactMeta, ARTIFACT_FORMAT};
use crate::checkpoint::Checkpoint;
use crate::config::SimConfig;
use crate::engine::{EngineCore, Simulator};
use crate::metrics::ChurnReport;
use crate::profiler::NullProfiler;
use crate::proto::{self, Request};
use crate::strategy::{build_strategy, RoutingAlgorithm};
use crate::telemetry::TelemetryCollector;
use crate::trace::{MemorySink, TraceSink};

/// How long a cycle-advancing request waits for an execution permit
/// before answering `overloaded`.
const PERMIT_WAIT: Duration = Duration::from_millis(200);

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently open sessions; `open` past this answers
    /// `admission_refused`.
    pub max_sessions: usize,
    /// Execution permits for cycle-advancing requests (`0` = available
    /// parallelism). Bounds CPU, not sessions: idle sessions are cheap.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_sessions: 64,
            workers: 0,
        }
    }
}

/// A counting semaphore (std has none): execution permits for the
/// cycle-advancing requests.
struct Permits {
    free: Mutex<usize>,
    cv: Condvar,
}

impl Permits {
    fn new(n: usize) -> Permits {
        Permits {
            free: Mutex::new(n.max(1)),
            cv: Condvar::new(),
        }
    }

    /// Try to take a permit, waiting at most `wait`. Returns whether one
    /// was acquired (caller must `release`).
    fn acquire(&self, wait: Duration) -> bool {
        let guard = self.free.lock().unwrap();
        let (mut guard, timeout) = self
            .cv
            .wait_timeout_while(guard, wait, |free| *free == 0)
            .unwrap();
        if timeout.timed_out() && *guard == 0 {
            return false;
        }
        *guard -= 1;
        true
    }

    fn release(&self) {
        *self.free.lock().unwrap() += 1;
        self.cv.notify_one();
    }
}

/// One open session: its immutable identity (config + resolved strategy)
/// and the paused engine with its recording sinks.
struct SessionEntry {
    config: SimConfig,
    strategy: String,
    trees: usize,
    algo: Box<dyn RoutingAlgorithm + Send + Sync>,
    core: EngineCore,
    sink: MemorySink,
    telem: TelemetryCollector,
    /// Whether the session was already past the Theorem-3 bound when it
    /// was admitted (static faults the client configured). Such a run is
    /// best-effort by request — `degraded`, never `suspended`.
    admitted_past_bound: bool,
}

impl SessionEntry {
    /// Rebuild the simulator this session's engine steps against. The
    /// simulator borrows the strategy, so it cannot live in the entry;
    /// reconstruction is deterministic (same config, same algorithm) and
    /// cheap relative to a cycle batch.
    fn sim(&self) -> Simulator<'_> {
        Simulator::try_new(self.config.clone(), self.algo.as_ref())
            .expect("session config was validated at open")
    }

    /// The provenance header for this session's artifacts of `kind`.
    fn meta(&self, kind: ArtifactKind) -> ArtifactMeta {
        ArtifactMeta {
            kind,
            format: ARTIFACT_FORMAT,
            n: u64::from(self.config.n),
            modulus: self.config.modulus,
            seed: self.config.seed,
            threads: 1,
            strategy: self.strategy.clone(),
        }
    }

    /// The session's admission class right now: `"normal"`, `"degraded"`
    /// (budget consumed, or past the bound by the client's own static
    /// configuration / under a surviving strategy), or `"suspended"`
    /// (churn pushed the run past the bound it was admitted under, and
    /// the strategy does not survive that — stepping refused without
    /// `force`).
    fn service_class(&self) -> &'static str {
        use gcube_routing::HealthState::*;
        match self.core.monitor.state() {
            BoundExceeded if !self.algo.survives_bound_exceeded() && !self.admitted_past_bound => {
                "suspended"
            }
            BoundExceeded | Degraded => "degraded",
            Healthy => "normal",
        }
    }

    fn health(&self) -> &'static str {
        self.core.monitor.state().as_str()
    }

    /// Advance up to `cycles` cycles (`None` = to completion).
    fn advance(&mut self, cycles: Option<u64>) {
        // Borrow fields disjointly: the simulator borrows only `algo`,
        // leaving `core` and the sinks free for the step calls.
        let sim = Simulator::try_new(self.config.clone(), self.algo.as_ref())
            .expect("session config was validated at open");
        let mut left = cycles.unwrap_or(u64::MAX);
        while left > 0 {
            if self
                .core
                .step(&sim, &mut self.sink, &mut self.telem, &mut NullProfiler)
            {
                break;
            }
            left -= 1;
        }
    }

    fn finish(&mut self) -> ChurnReport {
        let sim = Simulator::try_new(self.config.clone(), self.algo.as_ref())
            .expect("session config was validated at open");
        self.core.finish(&sim, &mut self.telem, &mut NullProfiler)
    }
}

/// Resolve the wire strategy name against a concrete config: `auto`
/// picks the fault-free planner only when nothing can ever be faulty.
/// (The CLI applies the same rule, so daemon and single-run artifacts
/// carry the same strategy stamp.)
pub fn resolve_strategy_name(name: &str, config: &SimConfig) -> String {
    if name == "auto" {
        if config.faulty_nodes == 0 && config.schedule.is_none() {
            "ffgcr".to_string()
        } else {
            "ftgcr".to_string()
        }
    } else {
        name.to_string()
    }
}

/// The daemon state: the session map plus tuning. Protocol handling is
/// [`Server::handle_line`]; transports ([`serve`]) are thin line pumps
/// around it.
pub struct Server {
    cfg: ServerConfig,
    sessions: Mutex<HashMap<String, Arc<Mutex<SessionEntry>>>>,
    permits: Permits,
    shutdown: AtomicBool,
}

/// A handled request: the response text (one line, except `telemetry`
/// which appends its JSONL payload) and whether the daemon should stop.
pub struct Reply {
    /// Response text, no trailing newline.
    pub text: String,
    /// `true` after a `shutdown` request was acknowledged.
    pub shutdown: bool,
}

fn err_reply(code: &str, msg: &str) -> Reply {
    Reply {
        text: format!(
            "{{\"ok\":false,\"code\":{},\"error\":{}}}",
            proto::quote(code),
            proto::quote(msg),
        ),
        shutdown: false,
    }
}

fn ok_reply(op: &str, session: &str, fields: &str, meta: &ArtifactMeta) -> Reply {
    let mut text = format!(
        "{{\"ok\":true,\"op\":{},\"session\":{}",
        proto::quote(op),
        proto::quote(session),
    );
    if !fields.is_empty() {
        text.push(',');
        text.push_str(fields);
    }
    text.push_str(&format!(",\"meta\":{}}}", meta.to_jsonl_line()));
    Reply {
        text,
        shutdown: false,
    }
}

impl Server {
    /// Build a daemon with the given tuning.
    pub fn new(cfg: ServerConfig) -> Server {
        let workers = crate::session::resolve_threads(cfg.workers);
        Server {
            cfg,
            sessions: Mutex::new(HashMap::new()),
            permits: Permits::new(workers),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Currently open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Whether a `shutdown` request has been acknowledged.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn entry(&self, session: &str) -> Result<Arc<Mutex<SessionEntry>>, Reply> {
        self.sessions
            .lock()
            .unwrap()
            .get(session)
            .cloned()
            .ok_or_else(|| err_reply("no_such_session", &format!("no session {session:?}")))
    }

    /// Handle one request line, producing one reply. Thread-safe: called
    /// concurrently from every connection.
    pub fn handle_line(&self, line: &str) -> Reply {
        let request = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => return err_reply("bad_request", &e),
        };
        match request {
            Request::Open {
                session,
                config,
                strategy,
                trees,
            } => self.open(session, config, &strategy, trees),
            Request::Step {
                session,
                cycles,
                force,
            } => self.advance(&session, Some(cycles), force),
            Request::Run { session, force } => self.advance(&session, None, force),
            Request::Snapshot { session, path } => self.snapshot(&session, &path),
            Request::Restore { session, path } => self.restore(&session, &path),
            Request::Telemetry { session } => self.telemetry(&session),
            Request::Close {
                session,
                trace,
                telemetry,
            } => self.close(&session, trace.as_deref(), telemetry.as_deref()),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Reply {
                    text: format!(
                        "{{\"ok\":true,\"op\":\"shutdown\",\"sessions_discarded\":{}}}",
                        self.session_count()
                    ),
                    shutdown: true,
                }
            }
        }
    }

    fn open(&self, session: String, config: SimConfig, strategy: &str, trees: usize) -> Reply {
        {
            let sessions = self.sessions.lock().unwrap();
            if sessions.contains_key(&session) {
                return err_reply(
                    "session_exists",
                    &format!("session {session:?} is already open"),
                );
            }
            if sessions.len() >= self.cfg.max_sessions {
                return err_reply(
                    "admission_refused",
                    &format!(
                        "session limit reached ({} open, max {})",
                        sessions.len(),
                        self.cfg.max_sessions
                    ),
                );
            }
        }
        let strategy = resolve_strategy_name(strategy, &config);
        let algo = match build_strategy(&strategy, trees) {
            Ok(a) => a,
            Err(e) => return err_reply("bad_request", &e),
        };
        // Normalize to the strategy's wire identity: single-tree
        // strategies ignore the request's tree count, and checkpoints
        // compare against the wire value.
        let trees = algo.wire_spec().map_or(trees, |(_, t)| t);
        let (core, telem, total_cycles) = {
            let sim = match Simulator::try_new(config.clone(), algo.as_ref()) {
                Ok(s) => s,
                Err(e) => return err_reply(e.code(), &e.to_string()),
            };
            let mut sink = MemorySink::default();
            let mut telem = TelemetryCollector::new(sim.cube(), config.telemetry_interval);
            let core = EngineCore::new(&sim, &mut sink, &mut telem);
            // `sink` captured the cycle-0 events; it moves into the entry
            // below via this tuple's closure over it.
            drop(sim);
            (
                (core, sink),
                telem,
                config.inject_cycles + config.drain_cycles,
            )
        };
        let (core, sink) = core;
        // Static faults the client configured may already exceed the
        // Theorem-3 bound: that is an explicit request for a best-effort
        // run, recorded so later churn (not the client's own baseline)
        // is what triggers suspension.
        let admitted_past_bound = core.monitor.state() == gcube_routing::HealthState::BoundExceeded;
        let entry = SessionEntry {
            config,
            strategy,
            trees,
            algo,
            core,
            sink,
            telem,
            admitted_past_bound,
        };
        let fields = format!(
            "\"cycle\":0,\"total_cycles\":{},\"health\":{},\"service_class\":{}",
            total_cycles,
            proto::quote(entry.health()),
            proto::quote(entry.service_class()),
        );
        let meta = entry.meta(ArtifactKind::Trace);
        let mut sessions = self.sessions.lock().unwrap();
        // Re-check under the lock: another connection may have raced us.
        if sessions.contains_key(&session) {
            return err_reply(
                "session_exists",
                &format!("session {session:?} is already open"),
            );
        }
        if sessions.len() >= self.cfg.max_sessions {
            return err_reply("admission_refused", "session limit reached");
        }
        sessions.insert(session.clone(), Arc::new(Mutex::new(entry)));
        drop(sessions);
        ok_reply("open", &session, &fields, &meta)
    }

    fn advance(&self, session: &str, cycles: Option<u64>, force: bool) -> Reply {
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(r) => return r,
        };
        let mut entry = entry.lock().unwrap();
        if entry.service_class() == "suspended" && !force {
            return err_reply(
                "bound_exceeded",
                "session is suspended (fault budget exceeded); \
                 pass \"force\":true to step it anyway",
            );
        }
        if !self.permits.acquire(PERMIT_WAIT) {
            return err_reply("overloaded", "all worker permits are busy; retry");
        }
        entry.advance(cycles);
        self.permits.release();
        let op = if cycles.is_some() { "step" } else { "run" };
        let fields = format!(
            "\"cycle\":{},\"done\":{},\"in_flight\":{},\"health\":{},\"service_class\":{}",
            entry.core.cycle,
            entry.core.is_done(),
            entry.core.in_flight,
            proto::quote(entry.health()),
            proto::quote(entry.service_class()),
        );
        let meta = entry.meta(ArtifactKind::Trace);
        ok_reply(op, session, &fields, &meta)
    }

    fn snapshot(&self, session: &str, path: &str) -> Reply {
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(r) => return r,
        };
        let entry = entry.lock().unwrap();
        let sim = entry.sim();
        let mark = entry.sink.events().len() as u64;
        let ck = match Checkpoint::capture(&sim, &entry.core, mark) {
            Ok(c) => c,
            Err(e) => return err_reply("bad_request", &e),
        };
        if let Err(e) = std::fs::write(path, ck.to_text()) {
            return err_reply("io", &format!("cannot write {path:?}: {e}"));
        }
        let fields = format!(
            "\"cycle\":{},\"trace_mark\":{mark},\"path\":{}",
            entry.core.cycle,
            proto::quote(path),
        );
        let meta = entry.meta(ArtifactKind::Checkpoint);
        ok_reply("snapshot", session, &fields, &meta)
    }

    fn restore(&self, session: &str, path: &str) -> Reply {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return err_reply("io", &format!("cannot read {path:?}: {e}")),
        };
        let ck = match Checkpoint::from_text(&text) {
            Ok(c) => c,
            Err(e) => return err_reply("checkpoint_mismatch", &e),
        };
        let algo = match build_strategy(ck.strategy(), ck.trees()) {
            Ok(a) => a,
            Err(e) => return err_reply("checkpoint_mismatch", &e),
        };
        let core = {
            let sim = match Simulator::try_new(ck.config().clone(), algo.as_ref()) {
                Ok(s) => s,
                Err(e) => return err_reply(e.code(), &e.to_string()),
            };
            match ck.rebuild(&sim) {
                Ok(c) => c,
                Err(e) => return err_reply("checkpoint_mismatch", &e),
            }
        };
        let telem = {
            // Suffix-only across the boundary — see module docs.
            let gc = gcube_topology::GaussianCube::new(ck.config().n, ck.config().modulus)
                .expect("checkpoint config was validated");
            TelemetryCollector::new(&gc, ck.config().telemetry_interval)
        };
        let mark = ck.trace_mark() as usize;

        let existing = self.sessions.lock().unwrap().get(session).cloned();
        let reply_fields = |e: &SessionEntry, rewound: bool| {
            format!(
                "\"cycle\":{},\"trace_mark\":{mark},\"rewound\":{rewound},\
                 \"health\":{},\"service_class\":{}",
                e.core.cycle,
                proto::quote(e.health()),
                proto::quote(e.service_class()),
            )
        };
        match existing {
            Some(slot) => {
                // Rewind: the session must be the lineage that wrote the
                // checkpoint, or the retained trace prefix would be some
                // other run's.
                let mut entry = slot.lock().unwrap();
                if entry.config != *ck.config()
                    || entry.strategy != ck.strategy()
                    || entry.trees != ck.trees()
                {
                    return err_reply(
                        "checkpoint_mismatch",
                        "checkpoint was taken from a different run shape \
                         than this session",
                    );
                }
                if entry.sink.events().len() < mark {
                    return err_reply(
                        "checkpoint_mismatch",
                        "session holds fewer trace events than the \
                         checkpoint's mark — not this run's checkpoint",
                    );
                }
                entry.sink.truncate(mark);
                entry.core = core;
                entry.algo = algo;
                entry.telem = telem;
                let fields = reply_fields(&entry, true);
                let meta = entry.meta(ArtifactKind::Checkpoint);
                ok_reply("restore", session, &fields, &meta)
            }
            None => {
                {
                    let sessions = self.sessions.lock().unwrap();
                    if sessions.len() >= self.cfg.max_sessions {
                        return err_reply("admission_refused", "session limit reached");
                    }
                }
                // Restoring is re-admission: whatever health the
                // checkpointed run had is the baseline this session is
                // accepted at.
                let admitted_past_bound =
                    core.monitor.state() == gcube_routing::HealthState::BoundExceeded;
                let entry = SessionEntry {
                    config: ck.config().clone(),
                    strategy: ck.strategy().to_string(),
                    trees: ck.trees(),
                    algo,
                    core,
                    sink: MemorySink::default(),
                    telem,
                    admitted_past_bound,
                };
                let fields = reply_fields(&entry, false);
                let meta = entry.meta(ArtifactKind::Checkpoint);
                let mut sessions = self.sessions.lock().unwrap();
                if sessions.contains_key(session) {
                    return err_reply("session_exists", "session appeared concurrently");
                }
                if sessions.len() >= self.cfg.max_sessions {
                    return err_reply("admission_refused", "session limit reached");
                }
                sessions.insert(session.to_string(), Arc::new(Mutex::new(entry)));
                drop(sessions);
                ok_reply("restore", session, &fields, &meta)
            }
        }
    }

    fn telemetry(&self, session: &str) -> Reply {
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(r) => return r,
        };
        let entry = entry.lock().unwrap();
        let meta = entry.meta(ArtifactKind::Telemetry);
        let payload = entry.telem.to_jsonl();
        let lines = 1 + payload.lines().count();
        let mut reply = ok_reply(
            "telemetry",
            session,
            &format!("\"lines\":{lines},\"evicted\":{}", entry.telem.evicted()),
            &meta,
        );
        // The header line is followed by exactly `lines` raw JSONL lines:
        // the artifact meta header, then one line per retained sample —
        // the same wire shape `close` writes to a telemetry file.
        reply.text.push('\n');
        reply.text.push_str(&meta.to_jsonl_line());
        if !payload.is_empty() {
            reply.text.push('\n');
            reply.text.push_str(payload.trim_end_matches('\n'));
        }
        reply
    }

    fn close(&self, session: &str, trace: Option<&str>, telemetry: Option<&str>) -> Reply {
        let entry = match self.entry(session) {
            Ok(e) => e,
            Err(r) => return r,
        };
        {
            let mut entry = entry.lock().unwrap();
            // Closing an unfinished session drains it first — artifacts
            // describe complete runs. This is cycle-advancing work, so it
            // holds a permit like step/run (but is never refused: close
            // must always be possible, so it waits instead).
            if !entry.core.is_done() {
                while !self.permits.acquire(PERMIT_WAIT) {}
                entry.advance(None);
                self.permits.release();
            }
            let report = entry.finish();

            if let Some(path) = trace {
                if let Err(e) = write_trace_artifact(&entry, path) {
                    return err_reply("io", &format!("cannot write {path:?}: {e}"));
                }
            }
            if let Some(path) = telemetry {
                // Same bytes the CLI writes for a `.jsonl` telemetry path.
                let body = format!(
                    "{}\n{}",
                    entry.meta(ArtifactKind::Telemetry).to_jsonl_line(),
                    entry.telem.to_jsonl()
                );
                if let Err(e) = std::fs::write(path, body) {
                    return err_reply("io", &format!("cannot write {path:?}: {e}"));
                }
            }

            let m = &report.metrics;
            let fields = format!(
                "\"cycles\":{},\"injected\":{},\"delivered\":{},\"dropped\":{},\
                 \"route_failures\":{},\"in_flight_at_end\":{},\"trace_events\":{},\
                 \"health\":{},\"service_class\":{}",
                m.cycles,
                m.injected,
                m.delivered,
                m.dropped,
                m.route_failures,
                m.in_flight_at_end,
                entry.sink.events().len(),
                proto::quote(entry.health()),
                proto::quote(entry.service_class()),
            );
            let meta = entry.meta(ArtifactKind::Trace);
            let reply = ok_reply("close", session, &fields, &meta);
            drop(entry);
            self.sessions.lock().unwrap().remove(session);
            reply
        }
    }
}

fn write_trace_artifact(entry: &SessionEntry, path: &str) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut jsonl =
        crate::trace::JsonlSink::with_meta(BufWriter::new(file), &entry.meta(ArtifactKind::Trace));
    for e in entry.sink.events() {
        jsonl.record(e);
    }
    jsonl.finish()?;
    Ok(())
}

// --- transports ---------------------------------------------------------

/// Pump one connection: read request lines from `input`, write reply
/// lines to `output`. Returns after EOF or an acknowledged shutdown.
fn pump<R: BufRead, W: Write>(server: &Server, input: R, mut output: W) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = server.handle_line(&line);
        output.write_all(reply.text.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if reply.shutdown {
            break;
        }
    }
    Ok(())
}

/// Run the daemon on stdin/stdout (one client — useful for piping a
/// script of requests) or, with a socket path, on a Unix listener with
/// one thread per connection. Blocks until `shutdown` is received (or
/// stdin reaches EOF in stdin mode).
pub fn serve(cfg: ServerConfig, socket: Option<&Path>) -> io::Result<()> {
    let server = Arc::new(Server::new(cfg));
    match socket {
        None => {
            let stdin = io::stdin();
            let stdout = io::stdout();
            pump(&server, stdin.lock(), stdout.lock())
        }
        Some(path) => serve_unix(server, path),
    }
}

fn serve_unix(server: Arc<Server>, path: &Path) -> io::Result<()> {
    use std::os::unix::net::{UnixListener, UnixStream};
    // A stale socket file from a crashed daemon would fail the bind.
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    let path_buf: PathBuf = path.to_path_buf();
    let mut handles = Vec::new();
    loop {
        let (stream, _) = listener.accept()?;
        if server.is_shutdown() {
            break;
        }
        let conn_server = Arc::clone(&server);
        let conn_path = path_buf.clone();
        handles.push(std::thread::spawn(move || {
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            let _ = pump(&conn_server, reader, stream);
            if conn_server.is_shutdown() {
                // Wake the accept loop so the daemon can exit.
                let _ = UnixStream::connect(&conn_path);
            }
        }));
        if server.is_shutdown() {
            break;
        }
    }
    for h in handles {
        let _ = h.join();
    }
    std::fs::remove_file(path).ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{config_to_json, parse_json, JsonValue};
    use crate::trace::to_jsonl;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("gcube-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn cfg() -> SimConfig {
        SimConfig::new(6, 2)
            .with_rate(0.05)
            .with_cycles(150, 600, 20)
            .with_seed(0xbeef)
            .with_faults(2)
    }

    fn open_line(session: &str, c: &SimConfig) -> String {
        format!(
            "{{\"op\":\"open\",\"session\":\"{session}\",\"strategy\":\"ftgcr\",\"config\":{}}}",
            config_to_json(c)
        )
    }

    fn parse_ok(reply: &Reply) -> JsonValue {
        let first = reply.text.lines().next().unwrap();
        let v = parse_json(first).unwrap();
        assert_eq!(
            v.get("ok").and_then(JsonValue::as_bool),
            Some(true),
            "expected ok reply, got: {first}"
        );
        v
    }

    fn code_of(reply: &Reply) -> String {
        let v = parse_json(reply.text.lines().next().unwrap()).unwrap();
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(false));
        v.get("code")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_string()
    }

    /// The daemon's artifacts must be bitwise the single-run API's.
    #[test]
    fn served_session_matches_direct_run() {
        let server = Server::new(ServerConfig::default());
        parse_ok(&server.handle_line(&open_line("s1", &cfg())));
        let run = parse_ok(&server.handle_line(r#"{"op":"run","session":"s1"}"#));
        assert_eq!(run.get("done").and_then(JsonValue::as_bool), Some(true));

        let trace_path = tmp("direct-trace.jsonl");
        let telem_path = tmp("direct-telem.jsonl");
        let close = parse_ok(&server.handle_line(&format!(
            r#"{{"op":"close","session":"s1","trace":"{trace_path}","telemetry":"{telem_path}"}}"#
        )));
        assert_eq!(server.session_count(), 0, "close must free the session");

        // Direct single-run equivalent.
        let algo = build_strategy("ftgcr", 0).unwrap();
        let sim = Simulator::try_new(cfg(), &*algo).unwrap();
        let mut sink = MemorySink::default();
        let mut telem = TelemetryCollector::new(sim.cube(), cfg().telemetry_interval);
        let report = sim
            .session()
            .trace(&mut sink)
            .telemetry(&mut telem)
            .try_run()
            .unwrap();

        assert_eq!(
            close.get("delivered").and_then(JsonValue::as_u64),
            Some(report.metrics.delivered)
        );
        let served_trace = std::fs::read_to_string(&trace_path).unwrap();
        let meta = ArtifactMeta {
            kind: ArtifactKind::Trace,
            format: ARTIFACT_FORMAT,
            n: 6,
            modulus: 2,
            seed: 0xbeef,
            threads: 1,
            strategy: "ftgcr".into(),
        };
        let direct_trace = format!("{}\n{}", meta.to_jsonl_line(), to_jsonl(sink.events()));
        assert_eq!(
            served_trace, direct_trace,
            "trace artifact must be bitwise equal"
        );

        let served_telem = std::fs::read_to_string(&telem_path).unwrap();
        let mut telem_meta = meta.clone();
        telem_meta.kind = ArtifactKind::Telemetry;
        let direct_telem = format!("{}\n{}", telem_meta.to_jsonl_line(), telem.to_jsonl());
        assert_eq!(
            served_telem, direct_telem,
            "telemetry artifact must be bitwise equal"
        );
    }

    /// Interleaved stepping of concurrent sessions must not perturb any
    /// of them: each equals its serial single-session run.
    #[test]
    fn interleaved_sessions_are_deterministic() {
        let server = Server::new(ServerConfig::default());
        let seeds = [1u64, 2, 3, 4];
        for (i, &seed) in seeds.iter().enumerate() {
            let c = cfg().with_seed(seed);
            parse_ok(&server.handle_line(&open_line(&format!("s{i}"), &c)));
        }
        // Round-robin in uneven bites until all complete.
        let mut done = [false; 4];
        let mut bite = 7u64;
        while !done.iter().all(|&d| d) {
            for (i, d) in done.iter_mut().enumerate() {
                if *d {
                    continue;
                }
                let r = parse_ok(&server.handle_line(&format!(
                    "{{\"op\":\"step\",\"session\":\"s{i}\",\"cycles\":{bite}}}"
                )));
                *d = r.get("done").and_then(JsonValue::as_bool) == Some(true);
                bite = bite % 13 + 3;
            }
        }
        for (i, &seed) in seeds.iter().enumerate() {
            let path = tmp(&format!("inter-{i}.jsonl"));
            parse_ok(&server.handle_line(&format!(
                "{{\"op\":\"close\",\"session\":\"s{i}\",\"trace\":\"{path}\"}}"
            )));
            let served = std::fs::read_to_string(&path).unwrap();

            let algo = build_strategy("ftgcr", 0).unwrap();
            let sim = Simulator::try_new(cfg().with_seed(seed), &*algo).unwrap();
            let mut sink = MemorySink::default();
            sim.session().trace(&mut sink).try_run().unwrap();
            assert!(
                served.ends_with(&to_jsonl(sink.events())),
                "session s{i} diverged from its serial run"
            );
        }
    }

    /// Snapshot mid-run, keep stepping, restore back onto the same
    /// session (rewind), finish: artifacts equal the uninterrupted run.
    #[test]
    fn rewind_restore_reproduces_uninterrupted_artifacts() {
        let server = Server::new(ServerConfig::default());
        let c = cfg().with_seed(77);

        // Uninterrupted reference.
        parse_ok(&server.handle_line(&open_line("ref", &c)));
        parse_ok(&server.handle_line(r#"{"op":"run","session":"ref"}"#));
        let ref_path = tmp("rewind-ref.jsonl");
        parse_ok(&server.handle_line(&format!(
            r#"{{"op":"close","session":"ref","trace":"{ref_path}"}}"#
        )));

        // Interrupted run: step, snapshot, step past, rewind, finish.
        parse_ok(&server.handle_line(&open_line("s", &c)));
        parse_ok(&server.handle_line(r#"{"op":"step","session":"s","cycles":60}"#));
        let ck_path = tmp("rewind.ck");
        let snap = parse_ok(&server.handle_line(&format!(
            r#"{{"op":"snapshot","session":"s","path":"{ck_path}"}}"#
        )));
        assert_eq!(snap.get("cycle").and_then(JsonValue::as_u64), Some(60));
        parse_ok(&server.handle_line(r#"{"op":"step","session":"s","cycles":100}"#));
        let restore = parse_ok(&server.handle_line(&format!(
            r#"{{"op":"restore","session":"s","path":"{ck_path}"}}"#
        )));
        assert_eq!(
            restore.get("rewound").and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(restore.get("cycle").and_then(JsonValue::as_u64), Some(60));
        let s_path = tmp("rewind-s.jsonl");
        parse_ok(&server.handle_line(&format!(
            r#"{{"op":"close","session":"s","trace":"{s_path}"}}"#
        )));

        assert_eq!(
            std::fs::read_to_string(&s_path).unwrap(),
            std::fs::read_to_string(&ref_path).unwrap(),
            "rewound session must reproduce the uninterrupted artifact bitwise"
        );
    }

    /// Restoring into a fresh session replays the suffix.
    #[test]
    fn restore_into_new_session_replays_suffix() {
        let server = Server::new(ServerConfig::default());
        let c = cfg().with_seed(99);
        parse_ok(&server.handle_line(&open_line("a", &c)));
        parse_ok(&server.handle_line(r#"{"op":"step","session":"a","cycles":50}"#));
        let ck_path = tmp("suffix.ck");
        let snap = parse_ok(&server.handle_line(&format!(
            r#"{{"op":"snapshot","session":"a","path":"{ck_path}"}}"#
        )));
        let mark = snap.get("trace_mark").and_then(JsonValue::as_u64).unwrap() as usize;

        let a_path = tmp("suffix-a.jsonl");
        parse_ok(&server.handle_line(&format!(
            r#"{{"op":"close","session":"a","trace":"{a_path}"}}"#
        )));
        let b = parse_ok(&server.handle_line(&format!(
            r#"{{"op":"restore","session":"b","path":"{ck_path}"}}"#
        )));
        assert_eq!(b.get("rewound").and_then(JsonValue::as_bool), Some(false));
        let b_path = tmp("suffix-b.jsonl");
        parse_ok(&server.handle_line(&format!(
            r#"{{"op":"close","session":"b","trace":"{b_path}"}}"#
        )));

        // a's artifact: meta + full stream. b's: meta + suffix only.
        let full: Vec<String> = std::fs::read_to_string(&a_path)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        let suffix: Vec<String> = std::fs::read_to_string(&b_path)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(suffix[0], full[0], "same provenance header");
        assert_eq!(
            &suffix[1..],
            &full[1 + mark..],
            "fresh session must hold exactly the post-mark suffix"
        );
    }

    #[test]
    fn admission_and_errors() {
        let server = Server::new(ServerConfig {
            max_sessions: 1,
            workers: 1,
        });
        parse_ok(&server.handle_line(&open_line("only", &cfg())));
        assert_eq!(
            code_of(&server.handle_line(&open_line("only", &cfg()))),
            "session_exists"
        );
        assert_eq!(
            code_of(&server.handle_line(&open_line("more", &cfg()))),
            "admission_refused"
        );
        assert_eq!(
            code_of(&server.handle_line(r#"{"op":"step","session":"ghost"}"#)),
            "no_such_session"
        );
        assert_eq!(
            code_of(&server.handle_line("{\"op\":\"warp\"}")),
            "bad_request"
        );
        assert_eq!(code_of(&server.handle_line("not json")), "bad_request");
        // Engine refusals surface their stable SimError codes.
        parse_ok(&server.handle_line(r#"{"op":"close","session":"only"}"#));
        let bad = format!(
            "{{\"op\":\"open\",\"session\":\"x\",\"config\":{}}}",
            config_to_json(&SimConfig::new(6, 3))
        );
        assert_eq!(code_of(&server.handle_line(&bad)), "invalid_topology");
    }

    #[test]
    fn static_faults_admit_degraded_and_churn_suspends() {
        use crate::injection::{FaultKind, FaultSchedule, FaultTarget, TimedFault};
        use gcube_topology::NodeId;

        let server = Server::new(ServerConfig::default());
        // Node faults are never A-category: any static node fault puts
        // the run past the Theorem-3 bound. The client configured them,
        // so the session admits — marked degraded, free to step.
        let r = parse_ok(&server.handle_line(&open_line("static", &cfg())));
        assert_eq!(
            r.get("service_class").and_then(JsonValue::as_str),
            Some("degraded")
        );
        parse_ok(&server.handle_line(r#"{"op":"step","session":"static","cycles":5}"#));

        // A session admitted healthy that the fault *schedule* pushes
        // past the bound is suspended: stepping refused without force.
        let c = cfg()
            .with_faults(0)
            .with_schedule(FaultSchedule::Scripted(vec![TimedFault {
                cycle: 30,
                target: FaultTarget::Node(NodeId(5)),
                kind: FaultKind::Permanent,
            }]));
        let r = parse_ok(&server.handle_line(&open_line("churned", &c)));
        assert_eq!(
            r.get("service_class").and_then(JsonValue::as_str),
            Some("normal")
        );
        let r = parse_ok(&server.handle_line(r#"{"op":"step","session":"churned","cycles":40}"#));
        assert_eq!(
            r.get("service_class").and_then(JsonValue::as_str),
            Some("suspended")
        );
        assert_eq!(
            code_of(&server.handle_line(r#"{"op":"step","session":"churned","cycles":10}"#)),
            "bound_exceeded"
        );
        // Force overrides; snapshot and close stay available throughout.
        parse_ok(
            &server.handle_line(r#"{"op":"step","session":"churned","cycles":10,"force":true}"#),
        );
        let ck = tmp("suspended.ck");
        parse_ok(&server.handle_line(&format!(
            r#"{{"op":"snapshot","session":"churned","path":"{ck}"}}"#
        )));
        parse_ok(&server.handle_line(r#"{"op":"close","session":"churned"}"#));

        // The surviving strategy degrades instead of suspending under
        // the same schedule.
        let multi = format!(
            "{{\"op\":\"open\",\"session\":\"m\",\"strategy\":\"multitree\",\"trees\":2,\
             \"config\":{}}}",
            config_to_json(&c)
        );
        parse_ok(&server.handle_line(&multi));
        let r = parse_ok(&server.handle_line(r#"{"op":"step","session":"m","cycles":40}"#));
        assert_eq!(
            r.get("service_class").and_then(JsonValue::as_str),
            Some("degraded"),
            "multitree survives the bound: degraded, never suspended"
        );
        parse_ok(&server.handle_line(r#"{"op":"step","session":"m","cycles":10}"#));
    }

    #[test]
    fn telemetry_streams_the_artifact_shape() {
        let server = Server::new(ServerConfig::default());
        parse_ok(&server.handle_line(&open_line("t", &cfg())));
        parse_ok(&server.handle_line(r#"{"op":"step","session":"t","cycles":45}"#));
        let reply = server.handle_line(r#"{"op":"telemetry","session":"t"}"#);
        let mut lines = reply.text.lines();
        let head = parse_json(lines.next().unwrap()).unwrap();
        let n = head.get("lines").and_then(JsonValue::as_u64).unwrap() as usize;
        let rest: Vec<&str> = lines.collect();
        assert_eq!(rest.len(), n, "header must announce the exact line count");
        assert!(ArtifactMeta::is_meta_line(rest[0]));
        // 45 cycles at interval 100: no full window yet — meta line only.
        assert_eq!(n, 1);
        parse_ok(&server.handle_line(r#"{"op":"step","session":"t","cycles":100}"#));
        let reply = server.handle_line(r#"{"op":"telemetry","session":"t"}"#);
        let head = parse_json(reply.text.lines().next().unwrap()).unwrap();
        assert!(head.get("lines").and_then(JsonValue::as_u64).unwrap() >= 2);
    }

    #[test]
    fn shutdown_acknowledges_and_reports() {
        let server = Server::new(ServerConfig::default());
        parse_ok(&server.handle_line(&open_line("s", &cfg())));
        let reply = server.handle_line(r#"{"op":"shutdown"}"#);
        assert!(reply.shutdown);
        assert!(server.is_shutdown());
        let v = parse_json(&reply.text).unwrap();
        assert_eq!(
            v.get("sessions_discarded").and_then(JsonValue::as_u64),
            Some(1)
        );
    }
}
