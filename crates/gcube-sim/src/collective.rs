//! The collective traffic class: periodic broadcast / multicast / gather
//! operations planned over fault-screened, regraft-repaired broadcast
//! trees and executed as deterministic multi-unicast.
//!
//! Every `collective_interval` cycles one operation launches. Its root
//! class rotates through the ending classes (Theorem 2 makes the class
//! the natural cache key); the concrete root is the first view-healthy
//! node of that class. The routing layer supplies the tree — cached per
//! class in a [`PlanCache`], re-grafted in place when the fault
//! generation moved, rebuilt only when the root itself died — and this
//! module flattens it into per-target source-routed packets:
//!
//! * **broadcast / multicast**: one packet per covered target, injected
//!   at the root with the root-to-target tree path as its route;
//! * **gather**: one packet per covered target, injected *at* the target
//!   with its tree path to the root as the route.
//!
//! The packets then flow through the ordinary store-and-forward engine —
//! same queues, same recovery, same TTL — distinguished only by the
//! [`COLLECTIVE_BIT`] in their packet id, which routes their accounting
//! into the collective ledger instead of the measured unicast counters.
//!
//! Everything here is deterministic and RNG-free: the launch schedule is
//! a pure function of the cycle, the multicast membership a hash of
//! `(seed, op, node)`, and the plan a pure function of the replicated
//! routing view — which is what lets every shard of the parallel engine
//! re-derive the identical plan without communicating.

use std::collections::HashMap;
use std::sync::Arc;

use gcube_routing::plan_cache::PlanCache;
use gcube_routing::{BroadcastTree, RepairOutcome, Route};
use gcube_topology::{GaussianCube, LinkMask, NodeId, Topology};

use crate::config::CollectiveOp;
use crate::metrics::OpStat;

/// High bit of a packet id: set on every collective packet. Unicast ids
/// count up from zero and a run would need ~9.2e18 injections to collide.
pub const COLLECTIVE_BIT: u64 = 1 << 63;

/// Bit position of the operation index inside a collective packet id.
const OP_SHIFT: u32 = 40;

/// Whether a packet id belongs to the collective traffic class.
#[inline]
pub fn is_collective(id: u64) -> bool {
    id & COLLECTIVE_BIT != 0
}

/// The operation index encoded in a collective packet id.
#[inline]
pub fn op_of(id: u64) -> u64 {
    (id & !COLLECTIVE_BIT) >> OP_SHIFT
}

/// Pack `(op, rank)` into a collective packet id. `rank` is the target's
/// BFS position in the tree (root = 0, so real targets start at 1): it
/// doubles as the deterministic tie-breaker that keeps the sharded
/// engine's event merge in sequential order.
#[inline]
fn encode(op: u64, rank: u32) -> u64 {
    debug_assert!(op < 1 << (63 - OP_SHIFT), "op index overflows the id");
    COLLECTIVE_BIT | (op << OP_SHIFT) | u64::from(rank)
}

/// SplitMix64 finaliser — the multicast membership hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Whether node `v` is a destination of multicast operation `op`: a
/// deterministic pseudo-random half of the covered nodes, stable across
/// engines and thread counts.
fn multicast_member(seed: u64, op: u64, v: NodeId) -> bool {
    splitmix64(splitmix64(seed ^ op) ^ v.0) & 1 == 0
}

/// One per-target packet of a planned collective operation, ready for
/// injection.
pub(crate) struct LaunchPacket {
    /// Node the packet enters the network at (the root for broadcast and
    /// multicast, the target itself for gather).
    pub src: NodeId,
    /// The target's BFS rank in the tree (≥ 1; the trace-merge key).
    pub rank: u32,
    /// Collective packet id ([`encode`]d op and rank).
    pub id: u64,
    /// Full source route along the repaired tree.
    pub route: Route,
}

/// A fully planned collective operation: the repaired tree's metadata
/// plus the packets to inject, in rank order.
pub(crate) struct LaunchPlan {
    /// Operation index in the launch schedule.
    pub op: u64,
    /// Concrete root the operation runs from.
    pub root: NodeId,
    /// The root's ending class (the tree-cache key).
    pub class: u64,
    /// Fault generation the tree was screened against.
    pub generation: u64,
    /// What the cache did to produce the tree (hit / regraft / rebuild).
    pub repair: RepairOutcome,
    /// Per-target packets, ascending by rank.
    pub packets: Vec<LaunchPacket>,
}

/// The per-engine collective planner. Holds the shared tree cache; in
/// the sharded engine every shard owns a planner wrapping the *same*
/// `Arc<PlanCache>`, so the screened tree is built once and shared.
pub(crate) struct CollectivePlanner {
    op: CollectiveOp,
    interval: u64,
    seed: u64,
    cache: Arc<PlanCache>,
}

impl CollectivePlanner {
    pub fn new(op: CollectiveOp, interval: u64, seed: u64, cache: Arc<PlanCache>) -> Self {
        CollectivePlanner {
            op,
            interval: interval.max(1),
            seed,
            cache,
        }
    }

    /// The planner's tree cache — checkpointing captures its stateful
    /// broadcast-tree entries (regraft history shapes future trees).
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The operation index due at `cycle`, if the schedule fires: one
    /// launch every `interval` cycles while injection is open.
    pub fn due(&self, cycle: u64, inject_cycles: u64) -> Option<u64> {
        (cycle < inject_cycles && cycle.is_multiple_of(self.interval))
            .then(|| cycle / self.interval)
    }

    /// Plan operation `op_index` against the routing `view` at fault
    /// `generation` (the view's change stamp — the tree-cache
    /// invalidation key), filtering sources through `src_dead` (the
    /// ground truth: a node that is actually dead cannot transmit,
    /// whatever the view believes).
    ///
    /// Returns `None` — a *skipped* operation — when every candidate
    /// root of the scheduled class is dead in the view, or when source
    /// filtering leaves no packet to inject (e.g. a broadcast whose
    /// view-healthy root is truth-dead).
    pub fn plan<M, F>(
        &self,
        gc: &GaussianCube,
        view: &M,
        generation: u64,
        src_dead: F,
        op_index: u64,
    ) -> Option<LaunchPlan>
    where
        M: LinkMask + ?Sized,
        F: Fn(NodeId) -> bool,
    {
        let classes = 1u64 << gc.alpha();
        let class = op_index % classes;
        let n_nodes = gc.num_nodes();
        // The first view-healthy node of the class is the root; node ids
        // with ending class c are exactly {c, c + 2^α, c + 2·2^α, …}.
        let root = (class..n_nodes)
            .step_by(classes as usize)
            .map(NodeId)
            .find(|&v| view.node_ok(v))?;
        let (tree, repair) = self.cache.broadcast_tree_for(gc, view, root, generation);
        let packets = self.flatten(&tree, op_index, &src_dead);
        if packets.is_empty() {
            return None;
        }
        Some(LaunchPlan {
            op: op_index,
            root,
            class,
            generation,
            repair,
            packets,
        })
    }

    /// Flatten the tree into rank-ordered per-target packets.
    fn flatten<F: Fn(NodeId) -> bool>(
        &self,
        tree: &BroadcastTree,
        op_index: u64,
        src_dead: &F,
    ) -> Vec<LaunchPacket> {
        let root = tree.root;
        let mut packets = Vec::new();
        for (rank, &v) in tree.order.iter().enumerate() {
            if rank == 0 {
                continue; // the root is not a target of its own operation
            }
            if self.op == CollectiveOp::Multicast && !multicast_member(self.seed, op_index, v) {
                continue;
            }
            let rank = rank as u32;
            let id = encode(op_index, rank);
            let (src, route) = match self.op {
                CollectiveOp::Broadcast | CollectiveOp::Multicast => {
                    let mut path = tree.path_to_root(v);
                    path.reverse(); // root first, target last
                    (root, Route::new(path))
                }
                CollectiveOp::Gather => (v, Route::new(tree.path_to_root(v))),
            };
            if src_dead(src) {
                continue;
            }
            packets.push(LaunchPacket {
                src,
                rank,
                id,
                route,
            });
        }
        packets
    }
}

/// Per-engine (or per-shard) collective completion records: one
/// [`OpStat`] per launched operation, updated as the operation's packets
/// resolve. Shards each track their own copy — identical metadata,
/// disjoint outcome counts — and the coordinator merges them
/// positionally with [`crate::metrics::merge_ops`].
#[derive(Default)]
pub(crate) struct OpTracker {
    ops: Vec<OpStat>,
    pos: HashMap<u64, usize>,
}

impl OpTracker {
    pub fn new() -> Self {
        OpTracker::default()
    }

    /// Register a launched operation.
    pub fn begin(&mut self, plan: &LaunchPlan, cycle: u64) {
        self.pos.insert(plan.op, self.ops.len());
        self.ops.push(OpStat {
            op: plan.op,
            root: plan.root.0,
            started: cycle,
            expected: plan.packets.len() as u64,
            ..OpStat::default()
        });
    }

    /// Record one collective delivery.
    pub fn deliver(&mut self, id: u64, cycle: u64) {
        if let Some(&i) = self.pos.get(&op_of(id)) {
            let o = &mut self.ops[i];
            o.delivered += 1;
            o.last_delivery = o.last_delivery.max(cycle);
        }
    }

    /// Record one collective drop.
    pub fn dropped(&mut self, id: u64) {
        if let Some(&i) = self.pos.get(&op_of(id)) {
            self.ops[i].dropped += 1;
        }
    }

    /// Consume the tracker, yielding its records.
    pub fn into_ops(self) -> Vec<OpStat> {
        self.ops
    }

    /// Checkpoint view of the per-operation records.
    pub fn ops(&self) -> &[OpStat] {
        &self.ops
    }

    /// Rebuild a tracker from checkpointed records; the position index is
    /// derived (it is a pure function of the record list).
    pub fn from_ops(ops: Vec<OpStat>) -> Self {
        let pos = ops.iter().enumerate().map(|(i, o)| (o.op, i)).collect();
        OpTracker { ops, pos }
    }
}

/// Coordinator-side repair accounting: decides, per root class, whether
/// a [`LaunchPlan`]'s repair outcome describes a *new* tree transition
/// that must be counted and traced — exactly once, however many shards
/// re-derived the same plan.
#[derive(Default)]
pub(crate) struct RepairLedger {
    /// Per class: the `(root, generation)` last accounted.
    last: Vec<Option<(NodeId, u64)>>,
}

impl RepairLedger {
    pub fn new(classes: usize) -> Self {
        RepairLedger {
            last: vec![None; classes],
        }
    }

    /// Checkpoint view of the per-class `(root, generation)` memory.
    pub fn last(&self) -> &[Option<(NodeId, u64)>] {
        &self.last
    }

    /// Rebuild a ledger from its checkpointed per-class memory.
    pub fn from_last(last: Vec<Option<(NodeId, u64)>>) -> Self {
        RepairLedger { last }
    }

    /// Note a launch. Returns `Some(repair)` when the tree changed shape
    /// since the class's last accounted launch (regraft or rebuild);
    /// `None` for a pure cache hit or the class's very first build.
    pub fn note(&mut self, plan: &LaunchPlan) -> Option<RepairOutcome> {
        let slot = &mut self.last[plan.class as usize];
        let cur = (plan.root, plan.generation);
        match *slot {
            Some(prev) if prev == cur => None,
            Some(_) => {
                *slot = Some(cur);
                Some(plan.repair)
            }
            None => {
                *slot = Some(cur);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_routing::FaultSet;

    fn planner(op: CollectiveOp, gc: &GaussianCube) -> CollectivePlanner {
        CollectivePlanner::new(op, 10, 42, Arc::new(PlanCache::new(gc)))
    }

    #[test]
    fn id_encoding_round_trips() {
        let id = encode(5, 17);
        assert!(is_collective(id));
        assert_eq!(op_of(id), 5);
        assert_eq!(id & 0xff_ffff_ffff, 17);
        assert!(!is_collective(12345), "unicast ids stay unicast");
    }

    #[test]
    fn schedule_fires_on_interval_while_injecting() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let p = planner(CollectiveOp::Broadcast, &gc);
        assert_eq!(p.due(0, 100), Some(0));
        assert_eq!(p.due(10, 100), Some(1));
        assert_eq!(p.due(11, 100), None);
        assert_eq!(p.due(100, 100), None, "no launches after injection stops");
    }

    #[test]
    fn broadcast_plan_covers_all_healthy_nodes() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let p = planner(CollectiveOp::Broadcast, &gc);
        let view = FaultSet::new();
        let plan = p
            .plan(&gc, &view, 0, |_| false, 0)
            .expect("fault-free plan");
        assert_eq!(plan.root, NodeId(0));
        assert_eq!(plan.class, 0);
        assert_eq!(plan.packets.len() as u64, gc.num_nodes() - 1);
        for pkt in &plan.packets {
            assert!(is_collective(pkt.id));
            assert_eq!(op_of(pkt.id), 0);
            assert_eq!(pkt.route.source(), plan.root, "broadcast injects at root");
            assert!(pkt.route.hops() >= 1);
        }
        // Rank order is strictly ascending (the trace-merge key).
        assert!(plan.packets.windows(2).all(|w| w[0].rank < w[1].rank));
    }

    #[test]
    fn gather_plan_injects_at_targets() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let p = planner(CollectiveOp::Gather, &gc);
        let view = FaultSet::new();
        let plan = p
            .plan(&gc, &view, 0, |_| false, 1)
            .expect("fault-free plan");
        assert_eq!(plan.class, 1, "op 1 roots in ending class 1");
        assert_eq!(plan.root, NodeId(1));
        for pkt in &plan.packets {
            assert_eq!(pkt.route.dest(), plan.root, "gather converges on root");
            assert_eq!(pkt.route.source(), pkt.src);
        }
    }

    #[test]
    fn multicast_selects_a_deterministic_subset() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let p = planner(CollectiveOp::Multicast, &gc);
        let view = FaultSet::new();
        let a = p.plan(&gc, &view, 0, |_| false, 0).unwrap();
        let b = p.plan(&gc, &view, 0, |_| false, 0).unwrap();
        assert_eq!(a.packets.len(), b.packets.len(), "same op, same subset");
        assert!(
            (a.packets.len() as u64) < gc.num_nodes() - 1,
            "a strict subset"
        );
        assert!(!a.packets.is_empty(), "but not empty");
        // A different seed flips membership.
        let p2 = CollectivePlanner::new(
            CollectiveOp::Multicast,
            10,
            43,
            Arc::new(PlanCache::new(&gc)),
        );
        let c = p2.plan(&gc, &view, 0, |_| false, 0).unwrap();
        let ids = |pl: &LaunchPlan| pl.packets.iter().map(|p| p.id).collect::<Vec<_>>();
        assert_ne!(ids(&a), ids(&c), "membership depends on the seed");
    }

    #[test]
    fn faulty_root_candidates_are_skipped_along_the_class() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let classes = 1u64 << gc.alpha();
        let mut view = FaultSet::new();
        view.add_node(NodeId(0)); // first candidate of class 0
        let p = planner(CollectiveOp::Broadcast, &gc);
        let plan = p.plan(&gc, &view, 0, |_| false, 0).expect("fallback root");
        assert_eq!(plan.root, NodeId(classes), "next node of the class");
        // Kill the whole class: the operation is skipped.
        let mut all_dead = FaultSet::new();
        for v in (0..gc.num_nodes()).step_by(classes as usize) {
            all_dead.add_node(NodeId(v));
        }
        assert!(p
            .plan(&gc, &all_dead, all_dead.generation(), |_| false, 0)
            .is_none());
    }

    #[test]
    fn truth_dead_sources_never_inject() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let view = FaultSet::new(); // stale: believes everything healthy
        let p = planner(CollectiveOp::Broadcast, &gc);
        // The root is truth-dead: the whole broadcast fizzles.
        assert!(p.plan(&gc, &view, 0, |v| v == NodeId(0), 0).is_none());
        // Gather: only the dead source's packet is filtered.
        let g = planner(CollectiveOp::Gather, &gc);
        let full = g.plan(&gc, &view, 0, |_| false, 0).unwrap();
        let filtered = g.plan(&gc, &view, 0, |v| v == NodeId(3), 0).unwrap();
        assert_eq!(filtered.packets.len(), full.packets.len() - 1);
        assert!(filtered.packets.iter().all(|p| p.src != NodeId(3)));
    }

    #[test]
    fn repair_ledger_accounts_transitions_once() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let p = planner(CollectiveOp::Broadcast, &gc);
        let view = FaultSet::new();
        let plan = p.plan(&gc, &view, 0, |_| false, 0).unwrap();
        let mut ledger = RepairLedger::new(1 << gc.alpha());
        assert!(ledger.note(&plan).is_none(), "first build is not a repair");
        assert!(ledger.note(&plan).is_none(), "same generation is a hit");
        // Bump the generation: the next launch accounts one repair.
        let mut view2 = FaultSet::new();
        view2.add_node(NodeId(5));
        let plan2 = p
            .plan(&gc, &view2, view2.generation(), |_| false, 0)
            .unwrap();
        assert_ne!(plan2.generation, plan.generation);
        assert!(ledger.note(&plan2).is_some(), "generation change accounts");
        assert!(ledger.note(&plan2).is_none(), "but only once");
    }
}
