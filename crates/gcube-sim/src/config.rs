//! Simulation configuration.

use crate::traffic::TrafficPattern;

/// Parameters of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Network dimension `n` of `GC(n, M)`.
    pub n: u32,
    /// Modulus `M` (power of two).
    pub modulus: u64,
    /// Cycles during which packets are injected.
    pub inject_cycles: u64,
    /// Extra cycles allowed for in-flight packets to drain afterwards.
    pub drain_cycles: u64,
    /// Warm-up cycles excluded from the statistics.
    pub warmup_cycles: u64,
    /// Per-node per-cycle Bernoulli injection probability.
    pub injection_rate: f64,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Number of faulty nodes to inject (chosen pseudo-randomly, never the
    /// whole network; sources/destinations are always drawn healthy).
    pub faulty_nodes: usize,
    /// Spatial traffic pattern (paper: uniform).
    pub pattern: TrafficPattern,
    /// Per-node queue capacity. `None` models the paper's eager readership
    /// (unbounded buffers); `Some(k)` enables backpressure: a packet only
    /// moves if the target queue has room, and full queues block injection.
    pub buffer_capacity: Option<usize>,
}

impl SimConfig {
    /// A small default workload: moderate load, deterministic seed.
    pub fn new(n: u32, modulus: u64) -> SimConfig {
        SimConfig {
            n,
            modulus,
            inject_cycles: 600,
            drain_cycles: 2_000,
            warmup_cycles: 100,
            injection_rate: 0.01,
            seed: 0x6ca5_517e_5eed,
            faulty_nodes: 0,
            pattern: TrafficPattern::Uniform,
            buffer_capacity: None,
        }
    }

    /// Builder-style: set the injection rate.
    #[must_use]
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.injection_rate = rate;
        self
    }

    /// Builder-style: set the number of faulty nodes.
    #[must_use]
    pub fn with_faults(mut self, faulty_nodes: usize) -> Self {
        self.faulty_nodes = faulty_nodes;
        self
    }

    /// Builder-style: set the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set injection/drain/warmup cycle counts.
    #[must_use]
    pub fn with_cycles(mut self, inject: u64, drain: u64, warmup: u64) -> Self {
        self.inject_cycles = inject;
        self.drain_cycles = drain;
        self.warmup_cycles = warmup;
        self
    }

    /// Builder-style: set the spatial traffic pattern.
    #[must_use]
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Builder-style: bound per-node buffers (enables backpressure).
    #[must_use]
    pub fn with_buffer_capacity(mut self, capacity: usize) -> Self {
        self.buffer_capacity = Some(capacity);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = SimConfig::new(8, 2)
            .with_rate(0.05)
            .with_faults(1)
            .with_seed(42)
            .with_cycles(100, 50, 10);
        assert_eq!(c.n, 8);
        assert_eq!(c.modulus, 2);
        assert_eq!(c.injection_rate, 0.05);
        assert_eq!(c.faulty_nodes, 1);
        assert_eq!(c.seed, 42);
        assert_eq!((c.inject_cycles, c.drain_cycles, c.warmup_cycles), (100, 50, 10));
    }
}
