//! Simulation configuration.

use crate::error::SimError;
use crate::injection::FaultSchedule;
use crate::traffic::TrafficPattern;

/// How quickly routing nodes learn about fault events (paper §6
/// assumption 4 and claim 4).
///
/// The paper assumes each node's fault knowledge is current, reached via
/// *"at most `⌈n/2^α⌉ + 1` rounds of fault status exchange"*. Under
/// dynamic faults that assumption has a cost: between a fault event and
/// the end of the exchange, nodes route on a stale view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KnowledgeModel {
    /// Every node sees the ground truth instantly (the seed engine's
    /// implicit model; no staleness).
    #[default]
    Oracle,
    /// After each fault event the view lags the truth for the paper's
    /// claim-4 bound, `⌈n/2^α⌉ + 1` cycles, then snaps to it.
    PaperDelay,
    /// The lag is measured by actually running the synchronous exchange
    /// protocol ([`gcube_routing::knowledge::exchange_rounds`]) against
    /// the new ground truth.
    Measured,
}

/// Which collective primitive the periodic collective traffic class runs
/// (§1 of the paper credits the GC family with efficient broadcast /
/// multicast; the routing layer builds the fault-screened trees).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveOp {
    /// Root-to-all: one packet per covered node, routed down the repaired
    /// broadcast tree.
    Broadcast,
    /// Root-to-subset: a deterministic pseudo-random half of the covered
    /// nodes per operation.
    Multicast,
    /// All-to-root: every covered node sends one packet up its tree path.
    Gather,
}

impl CollectiveOp {
    /// Stable lower-snake name (CLI flag values, report labels).
    pub fn as_str(self) -> &'static str {
        match self {
            CollectiveOp::Broadcast => "broadcast",
            CollectiveOp::Multicast => "multicast",
            CollectiveOp::Gather => "gather",
        }
    }

    /// Inverse of [`CollectiveOp::as_str`].
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<CollectiveOp> {
        match s {
            "broadcast" => Some(CollectiveOp::Broadcast),
            "multicast" => Some(CollectiveOp::Multicast),
            "gather" => Some(CollectiveOp::Gather),
            _ => None,
        }
    }
}

/// Parameters of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Network dimension `n` of `GC(n, M)`.
    pub n: u32,
    /// Modulus `M` (power of two).
    pub modulus: u64,
    /// Cycles during which packets are injected.
    pub inject_cycles: u64,
    /// Extra cycles allowed for in-flight packets to drain afterwards.
    pub drain_cycles: u64,
    /// Warm-up cycles excluded from the statistics.
    pub warmup_cycles: u64,
    /// Per-node per-cycle Bernoulli injection probability.
    pub injection_rate: f64,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Number of faulty nodes to inject (chosen pseudo-randomly, never the
    /// whole network; sources/destinations are always drawn healthy).
    pub faulty_nodes: usize,
    /// Spatial traffic pattern (paper: uniform).
    pub pattern: TrafficPattern,
    /// Per-node queue capacity. `None` models the paper's eager readership
    /// (unbounded buffers); `Some(k)` enables backpressure: a packet only
    /// moves if the target queue has room, and full queues block injection.
    pub buffer_capacity: Option<usize>,
    /// Dynamic fault events applied while the run is in progress.
    pub schedule: FaultSchedule,
    /// How fast routing knowledge converges after a fault event.
    pub knowledge: KnowledgeModel,
    /// Maximum local re-route attempts per packet before it is dropped.
    pub reroute_budget: u32,
    /// Per-packet hop budget; `None` derives a generous default from the
    /// network dimension (`4n + 16`). A packet exceeding it is dropped.
    pub ttl: Option<u64>,
    /// Width, in cycles, of the delivery-ratio windows in
    /// [`crate::metrics::ChurnReport`].
    pub window: u64,
    /// Cycles per telemetry sample when a
    /// [`crate::telemetry::TelemetryCollector`] is attached (ignored with
    /// telemetry off).
    pub telemetry_interval: u64,
    /// Periodic collective traffic class; `None` runs unicast only.
    pub collective: Option<CollectiveOp>,
    /// Cycles between collective operations (root classes rotate per
    /// operation). Ignored without [`SimConfig::collective`].
    pub collective_interval: u64,
}

impl SimConfig {
    /// A small default workload: moderate load, deterministic seed.
    pub fn new(n: u32, modulus: u64) -> SimConfig {
        SimConfig {
            n,
            modulus,
            inject_cycles: 600,
            drain_cycles: 2_000,
            warmup_cycles: 100,
            injection_rate: 0.01,
            seed: 0x6ca5_517e_5eed,
            faulty_nodes: 0,
            pattern: TrafficPattern::Uniform,
            buffer_capacity: None,
            schedule: FaultSchedule::None,
            knowledge: KnowledgeModel::Oracle,
            reroute_budget: 8,
            ttl: None,
            window: 100,
            telemetry_interval: 100,
            collective: None,
            collective_interval: 50,
        }
    }

    /// Effective per-packet hop budget.
    pub fn effective_ttl(&self) -> u64 {
        self.ttl.unwrap_or(4 * u64::from(self.n) + 16)
    }

    /// Check the parameters the engine would otherwise have to guess
    /// about. In particular the injection rate must be a probability:
    /// it used to be silently clamped into `[0, 1]`, so `--rate 1.2`
    /// ran as `1.0` with no warning.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.injection_rate.is_finite() || !(0.0..=1.0).contains(&self.injection_rate) {
            return Err(SimError::InvalidRate(self.injection_rate));
        }
        if let FaultSchedule::Bernoulli { rate, .. } = &self.schedule {
            if !rate.is_finite() || !(0.0..=1.0).contains(rate) {
                return Err(SimError::InvalidChurnRate(*rate));
            }
        }
        if self.collective.is_some() && self.buffer_capacity.is_some() {
            // A broadcast wave injects O(N) packets in one cycle: under
            // finite buffers it would immediately deadlock against its own
            // backpressure, so the combination is rejected up front.
            return Err(SimError::CollectiveNeedsUnboundedBuffers);
        }
        Ok(())
    }

    /// Builder-style: set the injection rate.
    #[must_use]
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.injection_rate = rate;
        self
    }

    /// Builder-style: set the number of faulty nodes.
    #[must_use]
    pub fn with_faults(mut self, faulty_nodes: usize) -> Self {
        self.faulty_nodes = faulty_nodes;
        self
    }

    /// Builder-style: set the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set injection/drain/warmup cycle counts.
    #[must_use]
    pub fn with_cycles(mut self, inject: u64, drain: u64, warmup: u64) -> Self {
        self.inject_cycles = inject;
        self.drain_cycles = drain;
        self.warmup_cycles = warmup;
        self
    }

    /// Builder-style: set the spatial traffic pattern.
    #[must_use]
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Builder-style: bound per-node buffers (enables backpressure).
    #[must_use]
    pub fn with_buffer_capacity(mut self, capacity: usize) -> Self {
        self.buffer_capacity = Some(capacity);
        self
    }

    /// Builder-style: set the dynamic fault schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Builder-style: set the knowledge-convergence model.
    #[must_use]
    pub fn with_knowledge(mut self, knowledge: KnowledgeModel) -> Self {
        self.knowledge = knowledge;
        self
    }

    /// Builder-style: set the per-packet re-route budget.
    #[must_use]
    pub fn with_reroute_budget(mut self, budget: u32) -> Self {
        self.reroute_budget = budget;
        self
    }

    /// Builder-style: set the per-packet hop budget.
    #[must_use]
    pub fn with_ttl(mut self, ttl: u64) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Builder-style: set the delivery-ratio window width (cycles).
    #[must_use]
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window.max(1);
        self
    }

    /// Builder-style: set the telemetry sampling interval (cycles).
    #[must_use]
    pub fn with_telemetry_interval(mut self, interval: u64) -> Self {
        self.telemetry_interval = interval.max(1);
        self
    }

    /// Builder-style: enable the periodic collective traffic class.
    #[must_use]
    pub fn with_collective(mut self, op: CollectiveOp) -> Self {
        self.collective = Some(op);
        self
    }

    /// Builder-style: set the cycles between collective operations.
    #[must_use]
    pub fn with_collective_interval(mut self, interval: u64) -> Self {
        self.collective_interval = interval.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = SimConfig::new(8, 2)
            .with_rate(0.05)
            .with_faults(1)
            .with_seed(42)
            .with_cycles(100, 50, 10);
        assert_eq!(c.n, 8);
        assert_eq!(c.modulus, 2);
        assert_eq!(c.injection_rate, 0.05);
        assert_eq!(c.faulty_nodes, 1);
        assert_eq!(c.seed, 42);
        assert_eq!(
            (c.inject_cycles, c.drain_cycles, c.warmup_cycles),
            (100, 50, 10)
        );
    }

    #[test]
    fn churn_builders_and_defaults() {
        let c = SimConfig::new(8, 2);
        assert_eq!(c.schedule, FaultSchedule::None);
        assert_eq!(c.knowledge, KnowledgeModel::Oracle);
        assert_eq!(c.effective_ttl(), 4 * 8 + 16);
        let c = c
            .with_knowledge(KnowledgeModel::PaperDelay)
            .with_reroute_budget(3)
            .with_ttl(99)
            .with_window(50);
        assert_eq!(c.knowledge, KnowledgeModel::PaperDelay);
        assert_eq!(c.reroute_budget, 3);
        assert_eq!(c.effective_ttl(), 99);
        assert_eq!(c.window, 50);
    }

    #[test]
    fn validate_accepts_probability_rates() {
        for rate in [0.0, 0.005, 0.5, 1.0] {
            assert_eq!(SimConfig::new(6, 2).with_rate(rate).validate(), Ok(()));
        }
    }

    #[test]
    fn validate_rejects_out_of_range_rates() {
        for rate in [1.2, -0.1, f64::NAN, f64::INFINITY] {
            let err = SimConfig::new(6, 2).with_rate(rate).validate().unwrap_err();
            assert!(matches!(err, SimError::InvalidRate(_)), "{err}");
        }
    }

    #[test]
    fn collective_builders_and_names() {
        let c = SimConfig::new(8, 2);
        assert_eq!(c.collective, None);
        let c = c
            .with_collective(CollectiveOp::Gather)
            .with_collective_interval(0);
        assert_eq!(c.collective, Some(CollectiveOp::Gather));
        assert_eq!(c.collective_interval, 1, "interval clamps to at least 1");
        for op in [
            CollectiveOp::Broadcast,
            CollectiveOp::Multicast,
            CollectiveOp::Gather,
        ] {
            assert_eq!(CollectiveOp::from_str(op.as_str()), Some(op));
        }
        assert_eq!(CollectiveOp::from_str("scatter"), None);
    }

    #[test]
    fn validate_rejects_collective_with_finite_buffers() {
        let cfg = SimConfig::new(6, 2)
            .with_collective(CollectiveOp::Broadcast)
            .with_buffer_capacity(4);
        assert_eq!(
            cfg.validate().unwrap_err(),
            SimError::CollectiveNeedsUnboundedBuffers
        );
        assert_eq!(
            SimConfig::new(6, 2)
                .with_collective(CollectiveOp::Broadcast)
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_bad_churn_rate() {
        use crate::injection::{CategoryMix, FaultKind};
        let cfg = SimConfig::new(6, 2).with_schedule(FaultSchedule::Bernoulli {
            rate: 2.0,
            kind: FaultKind::Permanent,
            mix: CategoryMix::default(),
            node_fraction: 0.5,
        });
        assert_eq!(cfg.validate().unwrap_err(), SimError::InvalidChurnRate(2.0));
    }
}
