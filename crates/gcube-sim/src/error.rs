//! The simulator's unified error type.
//!
//! Every validation path — [`SimConfig::validate`], [`Simulator::try_new`],
//! the session builder, and the CLI's argument parser — reports through
//! [`SimError`], so callers match on variants instead of substring-checking
//! messages. Invalid parameters fail loudly instead of being silently
//! clamped (a typo'd `--rate 1.2` used to run as `1.0`).
//!
//! Since the daemon protocol ([`crate::proto`]) made these errors part of
//! the wire surface, every variant also carries a stable machine-readable
//! [`SimError::code`] shared by server responses and CLI diagnostics, and
//! the enum is `#[non_exhaustive]` so new refusal kinds can be added
//! without breaking downstream matches.
//!
//! [`SimConfig::validate`]: crate::SimConfig::validate
//! [`Simulator::try_new`]: crate::Simulator::try_new

use std::fmt;

/// Why a simulation cannot be configured or started.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The injection rate is not a probability in `[0, 1]`.
    InvalidRate(f64),
    /// A Bernoulli churn rate is not a probability in `[0, 1]`.
    InvalidChurnRate(f64),
    /// The `(n, M)` pair does not describe a valid Gaussian Cube. The
    /// rejected parameters ride along so a server response can say which
    /// field was wrong without parsing the reason text.
    InvalidTopology {
        /// The dimension count that was requested.
        n: u32,
        /// The modulus that was requested.
        modulus: u64,
        /// Human-readable reason from the topology layer.
        reason: String,
    },
    /// Finite per-node buffers (backpressure) are only defined for the
    /// sequential engine: cross-shard capacity checks would need mid-cycle
    /// coordination, so `--threads` above 1 rejects them.
    FiniteBuffersRequireSingleThread,
    /// The collective traffic class injects a whole broadcast wave in one
    /// cycle, which finite buffers would immediately deadlock; the two
    /// options cannot be combined.
    CollectiveNeedsUnboundedBuffers,
    /// A command-line argument failed to parse or combine.
    Cli(String),
}

impl SimError {
    /// Stable machine-readable code for this error kind — the shared
    /// vocabulary of daemon responses and CLI exit diagnostics. Codes are
    /// lower_snake, never reused, and survive message-text rewording.
    pub fn code(&self) -> &'static str {
        match self {
            SimError::InvalidRate(_) => "invalid_rate",
            SimError::InvalidChurnRate(_) => "invalid_churn_rate",
            SimError::InvalidTopology { .. } => "invalid_topology",
            SimError::FiniteBuffersRequireSingleThread => "finite_buffers_single_thread",
            SimError::CollectiveNeedsUnboundedBuffers => "collective_needs_unbounded_buffers",
            SimError::Cli(_) => "cli",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidRate(v) => {
                write!(f, "injection rate must be a probability in [0, 1], got {v}")
            }
            SimError::InvalidChurnRate(v) => {
                write!(f, "churn rate must be a probability in [0, 1], got {v}")
            }
            SimError::InvalidTopology { n, modulus, reason } => {
                write!(f, "invalid Gaussian Cube GC({n}, {modulus}): {reason}")
            }
            SimError::FiniteBuffersRequireSingleThread => write!(
                f,
                "finite buffer capacity (backpressure) requires a single-threaded run"
            ),
            SimError::CollectiveNeedsUnboundedBuffers => write!(
                f,
                "collective traffic requires unbounded buffers (drop --buffer-capacity)"
            ),
            SimError::Cli(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_user_facing() {
        assert_eq!(
            SimError::InvalidRate(1.2).to_string(),
            "injection rate must be a probability in [0, 1], got 1.2"
        );
        assert_eq!(
            SimError::InvalidChurnRate(-0.5).to_string(),
            "churn rate must be a probability in [0, 1], got -0.5"
        );
        assert_eq!(
            SimError::InvalidTopology {
                n: 6,
                modulus: 3,
                reason: "modulus must be a power of two".into()
            }
            .to_string(),
            "invalid Gaussian Cube GC(6, 3): modulus must be a power of two"
        );
        assert!(SimError::FiniteBuffersRequireSingleThread
            .to_string()
            .contains("single-threaded"));
        assert!(SimError::CollectiveNeedsUnboundedBuffers
            .to_string()
            .contains("unbounded buffers"));
        assert_eq!(
            SimError::Cli("unknown flag".into()).to_string(),
            "unknown flag"
        );
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            SimError::InvalidRate(2.0),
            SimError::InvalidChurnRate(2.0),
            SimError::InvalidTopology {
                n: 0,
                modulus: 0,
                reason: String::new(),
            },
            SimError::FiniteBuffersRequireSingleThread,
            SimError::CollectiveNeedsUnboundedBuffers,
            SimError::Cli(String::new()),
        ];
        let codes: Vec<&str> = all.iter().map(|e| e.code()).collect();
        assert_eq!(
            codes,
            vec![
                "invalid_rate",
                "invalid_churn_rate",
                "invalid_topology",
                "finite_buffers_single_thread",
                "collective_needs_unbounded_buffers",
                "cli",
            ]
        );
        let unique: std::collections::HashSet<&str> = codes.iter().copied().collect();
        assert_eq!(unique.len(), codes.len(), "codes must be distinct");
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&SimError::InvalidRate(2.0));
    }
}
