//! Structure-of-arrays packet and link state for the forwarding hot path.
//!
//! The engines used to keep one `VecDeque<Packet>` per node: 2^n
//! independently allocated ring buffers, each holding boxed routes, with
//! the per-cycle service scan touching every node whether or not it held
//! a packet. At `GC(14)` that is 16 384 scattered allocations walked per
//! cycle; at `GC(20)` it does not fit a cache level at all.
//!
//! This module replaces that layout with three flat structures:
//!
//! * [`PacketStore`] — an arena of packets in struct-of-arrays form. Every
//!   scalar field lives in its own contiguous `Vec`, indexed by a stable
//!   slot id; freed slots are recycled through a freelist. Routes stay as
//!   planner-produced [`Route`]s in a parallel column (the planner already
//!   allocates them; the arena only moves them). An intrusive `next` column
//!   threads the per-node FIFO order through the arena, so a queue is just
//!   a `(head, tail)` pair of slot ids.
//! * [`NodeQueues`] — the per-node FIFO heads/tails/lengths plus an
//!   occupancy bitset over the nodes. The service scan walks the bitset
//!   with word operations (one `u64` covers 64 nodes) in the engine's
//!   rotated service order, so a cycle's forwarding cost is proportional
//!   to the nodes that actually hold packets, not to the network size.
//! * [`LinkTable`] — per-dimension dead-link bitsets and a dead-node
//!   bitset, rebuilt from a [`FaultSet`] only when its generation stamp
//!   changes. The forwarding check `is_link_usable` drops from three hash
//!   probes per forwarded packet to three bit probes.
//!
//! The layouts change nothing observable: the sequential engine and the
//! shard engine produce bit-identical reports, traces, and telemetry over
//! either representation (the session proptests pin this).

use gcube_routing::{FaultSet, Route};
use gcube_topology::NodeId;

use crate::packet::Packet;

/// Null slot id / list terminator for the intrusive queue links.
pub(crate) const NIL: u32 = u32::MAX;

/// Arena of in-flight packets, one parallel column per field.
#[derive(Debug, Default)]
pub(crate) struct PacketStore {
    pub id: Vec<u64>,
    pub injected_at: Vec<u64>,
    pub hop_idx: Vec<u32>,
    pub hops_taken: Vec<u32>,
    pub planned_hops: Vec<u32>,
    pub reroutes: Vec<u32>,
    /// `None` marks a free slot; `Option<Route>` is pointer-niche packed,
    /// so the column costs nothing over `Route` itself.
    ///
    /// `pub(crate)` (like `free`) for the checkpoint codec only: a
    /// restored arena must reproduce the slot layout and freelist order
    /// exactly, or packet ids would land in different slots and the
    /// forwarding order would drift.
    pub(crate) routes: Vec<Option<Route>>,
    /// Intrusive FIFO link: the slot queued behind this one, or [`NIL`].
    pub next: Vec<u32>,
    pub(crate) free: Vec<u32>,
}

impl PacketStore {
    pub fn new() -> PacketStore {
        PacketStore::default()
    }

    /// Slots currently live (for conservation checks in tests).
    #[cfg(test)]
    pub fn live(&self) -> usize {
        self.routes.iter().flatten().count()
    }

    fn grab_slot(&mut self) -> u32 {
        if let Some(s) = self.free.pop() {
            return s;
        }
        let s = self.routes.len() as u32;
        self.id.push(0);
        self.injected_at.push(0);
        self.hop_idx.push(0);
        self.hops_taken.push(0);
        self.planned_hops.push(0);
        self.reroutes.push(0);
        self.routes.push(None);
        self.next.push(NIL);
        s
    }

    /// Store a freshly injected packet at the start of `route`.
    pub fn alloc(&mut self, id: u64, injected_at: u64, route: Route) -> u32 {
        let s = self.grab_slot();
        let su = s as usize;
        self.id[su] = id;
        self.injected_at[su] = injected_at;
        self.hop_idx[su] = 0;
        self.hops_taken[su] = 0;
        self.planned_hops[su] = route.hops() as u32;
        self.reroutes[su] = 0;
        self.routes[su] = Some(route);
        self.next[su] = NIL;
        s
    }

    /// Store a packet that arrived from another shard (or was built
    /// elsewhere), preserving all of its in-flight state.
    pub fn insert(&mut self, pkt: Packet) -> u32 {
        let s = self.grab_slot();
        let su = s as usize;
        self.id[su] = pkt.id;
        self.injected_at[su] = pkt.injected_at;
        self.hop_idx[su] = pkt.hop_idx as u32;
        self.hops_taken[su] = pkt.hops_taken as u32;
        self.planned_hops[su] = pkt.planned_hops as u32;
        self.reroutes[su] = pkt.reroutes;
        self.routes[su] = Some(pkt.route);
        self.next[su] = NIL;
        s
    }

    /// Materialise the slot as a [`Packet`] (moving the route out) and
    /// recycle it. Used for drops — which need the full packet for
    /// accounting — and for cross-shard moves.
    pub fn remove(&mut self, slot: u32) -> Packet {
        let su = slot as usize;
        let route = self.routes[su].take().expect("slot is live");
        self.free.push(slot);
        Packet {
            id: self.id[su],
            injected_at: self.injected_at[su],
            hop_idx: self.hop_idx[su] as usize,
            route,
            hops_taken: u64::from(self.hops_taken[su]),
            planned_hops: u64::from(self.planned_hops[su]),
            reroutes: self.reroutes[su],
        }
    }

    /// Recycle the slot without materialising it (deliveries: the
    /// accounting only needs the scalar columns, read before the call).
    pub fn discard(&mut self, slot: u32) {
        let su = slot as usize;
        debug_assert!(self.routes[su].is_some(), "double free");
        self.routes[su] = None;
        self.free.push(slot);
    }

    /// Clone the slot as a [`Packet`] (recovery candidates shipped to the
    /// coordinator while the queue stays untouched).
    pub fn snapshot(&self, slot: u32) -> Packet {
        let su = slot as usize;
        Packet {
            id: self.id[su],
            injected_at: self.injected_at[su],
            hop_idx: self.hop_idx[su] as usize,
            route: self.route(slot).clone(),
            hops_taken: u64::from(self.hops_taken[su]),
            planned_hops: u64::from(self.planned_hops[su]),
            reroutes: self.reroutes[su],
        }
    }

    #[inline]
    pub fn route(&self, slot: u32) -> &Route {
        self.routes[slot as usize].as_ref().expect("slot is live")
    }

    /// The node currently buffering the packet.
    #[inline]
    pub fn current(&self, slot: u32) -> NodeId {
        self.route(slot).nodes()[self.hop_idx[slot as usize] as usize]
    }

    /// The next node on the trajectory, or `None` at the destination.
    #[inline]
    pub fn next_hop(&self, slot: u32) -> Option<NodeId> {
        self.route(slot)
            .nodes()
            .get(self.hop_idx[slot as usize] as usize + 1)
            .copied()
    }

    /// Whether the packet sits at its destination.
    #[inline]
    pub fn arrived(&self, slot: u32) -> bool {
        self.hop_idx[slot as usize] as usize + 1 == self.route(slot).nodes().len()
    }

    /// Advance one hop along the route.
    #[inline]
    pub fn advance(&mut self, slot: u32) {
        let su = slot as usize;
        self.hop_idx[su] += 1;
        self.hops_taken[su] += 1;
    }

    /// Replace the remaining trajectory (mirror of [`Packet::replan`]).
    pub fn replan(&mut self, slot: u32, route: Route) {
        let su = slot as usize;
        self.routes[su] = Some(route);
        self.hop_idx[su] = 0;
        self.reroutes[su] += 1;
    }

    /// Extra links traversed beyond the injection-time plan.
    #[inline]
    pub fn detour_hops(&self, slot: u32) -> u64 {
        let su = slot as usize;
        u64::from(self.hops_taken[su].saturating_sub(self.planned_hops[su]))
    }
}

/// Per-node FIFO queues threaded through a [`PacketStore`], plus the
/// occupancy bitset the service scan walks.
#[derive(Debug)]
pub(crate) struct NodeQueues {
    head: Vec<u32>,
    tail: Vec<u32>,
    len: Vec<u32>,
    occ: Vec<u64>,
    n: usize,
}

impl NodeQueues {
    pub fn new(n_nodes: u64) -> NodeQueues {
        let n = n_nodes as usize;
        NodeQueues {
            head: vec![NIL; n],
            tail: vec![NIL; n],
            len: vec![0; n],
            occ: vec![0; n.div_ceil(64)],
            n,
        }
    }

    #[inline]
    pub fn len(&self, v: usize) -> usize {
        self.len[v] as usize
    }

    #[inline]
    pub fn is_empty(&self, v: usize) -> bool {
        self.len[v] == 0
    }

    /// Head slot of node `v`'s queue, if any.
    #[inline]
    pub fn front(&self, v: usize) -> Option<u32> {
        match self.head[v] {
            NIL => None,
            s => Some(s),
        }
    }

    pub fn push_back(&mut self, store: &mut PacketStore, v: usize, slot: u32) {
        store.next[slot as usize] = NIL;
        match self.tail[v] {
            NIL => {
                self.head[v] = slot;
                self.occ[v / 64] |= 1u64 << (v % 64);
            }
            t => store.next[t as usize] = slot,
        }
        self.tail[v] = slot;
        self.len[v] += 1;
    }

    /// Pop the head of a non-empty queue; returns its slot.
    pub fn pop_front(&mut self, store: &mut PacketStore, v: usize) -> u32 {
        let s = self.head[v];
        debug_assert_ne!(s, NIL, "pop from an empty queue");
        let nxt = store.next[s as usize];
        self.head[v] = nxt;
        if nxt == NIL {
            self.tail[v] = NIL;
            self.occ[v / 64] &= !(1u64 << (v % 64));
        }
        self.len[v] -= 1;
        s
    }

    /// Collect the occupied nodes in ascending order into `out`
    /// (capacity-reusing; `out` is cleared first).
    pub fn collect_occupied(&self, out: &mut Vec<u32>) {
        out.clear();
        self.collect_range(0, self.n, out);
    }

    /// Collect the occupied nodes in the engine's rotated service order —
    /// `[offset..n)` then `[0..offset)` — into `out`. The scan then walks
    /// only nodes that actually hold packets, in exactly the order the
    /// dense loop `v = (i + offset) % n` would have visited them.
    pub fn collect_occupied_rotated(&self, offset: usize, out: &mut Vec<u32>) {
        out.clear();
        self.collect_range(offset, self.n, out);
        self.collect_range(0, offset, out);
    }

    fn collect_range(&self, lo: usize, hi: usize, out: &mut Vec<u32>) {
        if lo >= hi {
            return;
        }
        let first = lo / 64;
        let last = (hi - 1) / 64;
        for w in first..=last {
            let mut bits = self.occ[w];
            if w == first {
                bits &= !0u64 << (lo % 64);
            }
            if w == last && !hi.is_multiple_of(64) {
                bits &= (1u64 << (hi % 64)) - 1;
            }
            while bits != 0 {
                out.push((w * 64 + bits.trailing_zeros() as usize) as u32);
                bits &= bits - 1;
            }
        }
    }
}

/// Bitset mirror of a [`FaultSet`], rebuilt only when the set's
/// generation stamp moves: a dead-node bitset plus one dead-link bitset
/// per dimension (indexed by the link's canonical bit-clear endpoint).
#[derive(Debug)]
pub(crate) struct LinkTable {
    synced: Option<u64>,
    words: usize,
    node_dead: Vec<u64>,
    /// `dim * words + w` — flattened per-dimension dead-link bitsets.
    dim_dead: Vec<u64>,
}

impl LinkTable {
    pub fn new(n_nodes: u64, n_dims: u32) -> LinkTable {
        let words = (n_nodes as usize).div_ceil(64);
        LinkTable {
            synced: None,
            words,
            node_dead: vec![0; words],
            dim_dead: vec![0; words * n_dims as usize],
        }
    }

    /// Rebuild from `faults` iff its generation moved since the last sync.
    pub fn sync(&mut self, faults: &FaultSet) {
        if self.synced == Some(faults.generation()) {
            return;
        }
        self.node_dead.fill(0);
        self.dim_dead.fill(0);
        for n in faults.faulty_nodes() {
            self.node_dead[n.0 as usize / 64] |= 1u64 << (n.0 % 64);
        }
        for l in faults.faulty_links() {
            let (lo, hi) = l.endpoints();
            let dim = (lo.0 ^ hi.0).trailing_zeros() as usize;
            self.dim_dead[dim * self.words + lo.0 as usize / 64] |= 1u64 << (lo.0 % 64);
        }
        self.synced = Some(faults.generation());
    }

    #[inline]
    pub fn node_faulty(&self, v: u64) -> bool {
        self.node_dead[v as usize / 64] & (1u64 << (v % 64)) != 0
    }

    /// Mirror of [`FaultSet::is_link_usable`] for the hop `from → to`
    /// over `dim`: the link itself and both endpoints must be healthy.
    #[inline]
    pub fn link_usable(&self, from: NodeId, to: NodeId, dim: u32) -> bool {
        let canon = from.0 & !(1u64 << dim);
        debug_assert_eq!(from.0 ^ to.0, 1u64 << dim, "hop must be one dimension");
        !self.node_faulty(from.0)
            && !self.node_faulty(to.0)
            && self.dim_dead[dim as usize * self.words + canon as usize / 64]
                & (1u64 << (canon % 64))
                == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::LinkId;

    fn route(nodes: &[u64]) -> Route {
        Route::new(nodes.iter().map(|&v| NodeId(v)).collect())
    }

    #[test]
    fn arena_roundtrip_preserves_packets() {
        let mut store = PacketStore::new();
        let s = store.alloc(7, 3, route(&[0, 1, 3]));
        assert_eq!(store.current(s), NodeId(0));
        assert_eq!(store.next_hop(s), Some(NodeId(1)));
        assert!(!store.arrived(s));
        store.advance(s);
        store.advance(s);
        assert!(store.arrived(s));
        let pkt = store.remove(s);
        assert_eq!((pkt.id, pkt.injected_at, pkt.hops_taken), (7, 3, 2));
        assert_eq!(store.live(), 0);
        // The freed slot is recycled.
        let s2 = store.alloc(8, 4, route(&[5, 7]));
        assert_eq!(s2, s, "freelist must recycle");
        let back = store.remove(s2);
        let s3 = store.insert(back);
        assert_eq!(store.id[s3 as usize], 8);
        assert_eq!(store.planned_hops[s3 as usize], 1);
    }

    #[test]
    fn replan_resets_position_and_counts() {
        let mut store = PacketStore::new();
        let s = store.alloc(0, 0, route(&[0, 1, 3]));
        store.advance(s);
        store.replan(s, route(&[1, 5, 7, 3]));
        assert_eq!(store.current(s), NodeId(1));
        assert_eq!(store.reroutes[s as usize], 1);
        assert_eq!(store.hops_taken[s as usize], 1);
        store.advance(s);
        store.advance(s);
        store.advance(s);
        assert_eq!(store.detour_hops(s), 2, "4 walked vs 2 planned");
    }

    #[test]
    fn queues_preserve_fifo_order() {
        let mut store = PacketStore::new();
        let mut q = NodeQueues::new(4);
        for id in 0..5 {
            let s = store.alloc(id, 0, route(&[2, 3]));
            q.push_back(&mut store, 2, s);
        }
        assert_eq!(q.len(2), 5);
        let mut ids = Vec::new();
        while !q.is_empty(2) {
            let s = q.pop_front(&mut store, 2);
            ids.push(store.id[s as usize]);
            store.discard(s);
        }
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(q.front(2).is_none());
    }

    /// The word-scan iteration equals the dense rotated loop for random
    /// occupancy patterns, including partial trailing words.
    #[test]
    fn rotated_scan_matches_dense_loop() {
        for n in [1usize, 5, 63, 64, 65, 130, 200] {
            let mut store = PacketStore::new();
            let mut q = NodeQueues::new(n as u64);
            let mut x = 0x9e3779b97f4a7c15u64;
            let mut occupied = vec![false; n];
            for (v, occ) in occupied.iter_mut().enumerate() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if x >> 61 == 0 || v % 7 == 3 {
                    let s = store.alloc(v as u64, 0, route(&[v as u64, v as u64 ^ 1]));
                    q.push_back(&mut store, v, s);
                    *occ = true;
                }
            }
            for offset in [0usize, 1, n / 2, n - 1] {
                let expect: Vec<u32> = (0..n)
                    .map(|i| ((i + offset) % n) as u32)
                    .filter(|&v| occupied[v as usize])
                    .collect();
                let mut got = Vec::new();
                q.collect_occupied_rotated(offset, &mut got);
                assert_eq!(got, expect, "n={n} offset={offset}");
                if offset == 0 {
                    let mut asc = Vec::new();
                    q.collect_occupied(&mut asc);
                    assert_eq!(asc, expect);
                }
            }
        }
    }

    /// The bitset table answers exactly like the hash-set it mirrors.
    #[test]
    fn link_table_mirrors_fault_set() {
        let mut faults = FaultSet::new();
        faults.add_node(NodeId(9));
        faults.add_link(LinkId::new(NodeId(4), 1));
        faults.add_link(LinkId::new(NodeId(67), 3));
        let mut table = LinkTable::new(128, 7);
        table.sync(&faults);
        for v in 0..128u64 {
            assert_eq!(table.node_faulty(v), faults.is_node_faulty(NodeId(v)));
            for dim in 0..7u32 {
                let from = NodeId(v);
                let to = NodeId(v ^ (1 << dim));
                assert_eq!(
                    table.link_usable(from, to, dim),
                    faults.is_link_usable(LinkId::new(from, dim)),
                    "v={v} dim={dim}"
                );
            }
        }
        // Repair propagates on the next generation change.
        faults.remove_node(NodeId(9));
        table.sync(&faults);
        assert!(!table.node_faulty(9));
    }
}
