//! Routing strategies pluggable into the simulator.

use std::sync::Arc;

use gcube_routing::{ffgcr, ftgcr, CacheStats, FaultSet, PlanCache, Route, RoutingError};
use gcube_topology::{GaussianCube, NodeId};
use parking_lot::RwLock;

pub use gcube_routing::multitree::{MultiTreeAtlas, TreeChoice, TreeHealth};

/// A planned trajectory plus, for multipath strategies, which spanning
/// tree carried it and how many tree switches finding it cost. The engine
/// feeds the tree data into the `tree_*` metric counters and the
/// `tree_switch` trace event; `tree: None` (every single-path strategy)
/// leaves those untouched.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedRoute {
    /// The packet trajectory.
    pub route: Route,
    /// Tree bookkeeping, when the strategy routes over a tree bundle.
    pub tree: Option<TreeChoice>,
}

/// A routing algorithm the simulator can drive.
///
/// # Concurrency contract
///
/// The shard engine's work-stealing injection round calls
/// [`plan_route`](Self::plan_route) from **every** worker thread
/// concurrently (whole ending classes are stolen off an atomic cursor),
/// and the engine guarantees bitwise-identical output for any thread
/// count. Implementations must therefore make any interior mutability
/// *interleaving-independent*: concurrent planning may not change what
/// any call returns, and observable side counters (e.g.
/// [`cache_stats`](Self::cache_stats)) must converge to the same totals
/// regardless of which thread planned what. The vendored `PlanCache`
/// is the model: its key space partitions by source ending class, and
/// each key accounts exactly one miss under any interleaving.
pub trait RoutingAlgorithm: Sync {
    /// Short name used in result tables.
    fn name(&self) -> &'static str;

    /// Compute the full trajectory for a packet.
    fn compute_route(
        &self,
        gc: &GaussianCube,
        faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError>;

    /// Compute a trajectory with multipath bookkeeping. The engine calls
    /// this at every planning site; the default delegates to
    /// [`compute_route`](Self::compute_route) with no tree data.
    fn plan_route(
        &self,
        gc: &GaussianCube,
        faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<PlannedRoute, RoutingError> {
        self.compute_route(gc, faults, s, d)
            .map(|route| PlannedRoute { route, tree: None })
    }

    /// Plan-cache counters, for strategies backed by a
    /// [`PlanCache`] (`None` for uncached strategies, or before first
    /// use). Not free — snapshotting takes the cache's entry lock — so
    /// callers poll it at sample boundaries, not per packet.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Whether the strategy keeps delivering past the Theorem-3 fault
    /// budget. The health monitor downgrades `BoundExceeded` to
    /// `Degraded` for such strategies — the bound signals FTGCR's proof
    /// obligations are void, not that this router is about to strand
    /// packets.
    fn survives_bound_exceeded(&self) -> bool {
        false
    }

    /// Per-tree health against `faults`, for multipath strategies
    /// (`None` otherwise). Drives the `--health-report` tree block.
    fn tree_health(&self, gc: &GaussianCube, faults: &FaultSet) -> Option<Vec<TreeHealth>> {
        let _ = (gc, faults);
        None
    }

    /// Stable wire identity `(name, trees)` for strategies that
    /// [`build_strategy`] can reconstruct — what a checkpoint records so
    /// a restored run replans with equivalent routing. `None` marks a
    /// strategy that cannot be checkpointed (e.g. the e-cube baseline).
    ///
    /// Cached and uncached variants share a wire name on purpose: they
    /// produce identical routes (the cache only amortises planning), so a
    /// restore may substitute one for the other bitwise-safely.
    fn wire_spec(&self) -> Option<(&'static str, usize)> {
        None
    }
}

/// FFGCR (Algorithm 3): optimal, fault-oblivious. Used for the fault-free
/// sweeps of Figures 5 and 6.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultFreeGcr;

impl RoutingAlgorithm for FaultFreeGcr {
    fn name(&self) -> &'static str {
        "FFGCR"
    }
    fn compute_route(
        &self,
        gc: &GaussianCube,
        _faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError> {
        ffgcr::route(gc, s, d)
    }
    fn wire_spec(&self) -> Option<(&'static str, usize)> {
        Some(("ffgcr", 0))
    }
}

/// FTGCR (Theorem 5): the fault-tolerant strategy. Used for Figures 7/8.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultTolerantGcr;

impl RoutingAlgorithm for FaultTolerantGcr {
    fn name(&self) -> &'static str {
        "FTGCR"
    }
    fn compute_route(
        &self,
        gc: &GaussianCube,
        faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError> {
        ftgcr::route(gc, faults, s, d).map(|(r, _)| r)
    }
    fn wire_spec(&self) -> Option<(&'static str, usize)> {
        Some(("ftgcr", 0))
    }
}

/// Lazily builds (and rebuilds on cube change) the [`PlanCache`] shared by
/// the cached strategies. A read lock covers the hot path so concurrent
/// sweep workers never serialise on a hit.
#[derive(Debug, Default)]
struct SharedCache {
    cache: RwLock<Option<Arc<PlanCache>>>,
}

impl SharedCache {
    fn cache_for(&self, gc: &GaussianCube) -> Arc<PlanCache> {
        {
            let guard = self.cache.read();
            if let Some(c) = guard.as_ref() {
                if c.matches(gc) {
                    return Arc::clone(c);
                }
            }
        }
        let mut guard = self.cache.write();
        if let Some(c) = guard.as_ref() {
            if c.matches(gc) {
                return Arc::clone(c);
            }
        }
        let built = Arc::new(PlanCache::new(gc));
        *guard = Some(Arc::clone(&built));
        built
    }

    fn stats(&self) -> Option<CacheStats> {
        self.cache.read().as_ref().map(|c| c.stats())
    }
}

/// FFGCR served from a [`PlanCache`]: identical routes to [`FaultFreeGcr`]
/// (property-tested), with the tree walk memoised per ending-class pair.
#[derive(Debug, Default)]
pub struct CachedFfgcr {
    shared: SharedCache,
}

impl CachedFfgcr {
    /// Create a strategy with an empty cache; it fills on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hit/miss counters of the underlying cache (`None` before first use).
    pub fn stats(&self) -> Option<CacheStats> {
        self.shared.stats()
    }
}

impl RoutingAlgorithm for CachedFfgcr {
    fn name(&self) -> &'static str {
        "FFGCR+cache"
    }
    fn compute_route(
        &self,
        gc: &GaussianCube,
        _faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError> {
        self.shared.cache_for(gc).route(gc, s, d)
    }
    fn cache_stats(&self) -> Option<CacheStats> {
        self.stats()
    }
    fn wire_spec(&self) -> Option<(&'static str, usize)> {
        Some(("ffgcr", 0))
    }
}

/// FTGCR with the fault-free planning stage served from a [`PlanCache`];
/// fault repair stays per-packet, so behaviour is identical to
/// [`FaultTolerantGcr`] (property-tested).
#[derive(Debug, Default)]
pub struct CachedFtgcr {
    shared: SharedCache,
}

impl CachedFtgcr {
    /// Create a strategy with an empty cache; it fills on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hit/miss counters of the underlying cache (`None` before first use).
    pub fn stats(&self) -> Option<CacheStats> {
        self.shared.stats()
    }
}

impl RoutingAlgorithm for CachedFtgcr {
    fn name(&self) -> &'static str {
        "FTGCR+cache"
    }
    fn compute_route(
        &self,
        gc: &GaussianCube,
        faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError> {
        let cache = self.shared.cache_for(gc);
        ftgcr::route_cached(gc, faults, s, d, &cache).map(|(r, _)| r)
    }
    fn cache_stats(&self) -> Option<CacheStats> {
        self.stats()
    }
    fn wire_spec(&self) -> Option<(&'static str, usize)> {
        Some(("ftgcr", 0))
    }
}

/// Dimension-ordered e-cube on the binary hypercube (`M = 1` only):
/// the classic baseline the paper's family generalises.
#[derive(Clone, Copy, Debug, Default)]
pub struct EcubeBaseline;

impl RoutingAlgorithm for EcubeBaseline {
    fn name(&self) -> &'static str {
        "e-cube"
    }
    fn compute_route(
        &self,
        gc: &GaussianCube,
        _faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError> {
        assert!(gc.is_hypercube(), "e-cube baseline requires M = 1");
        let mut nodes = vec![s];
        let mut cur = s;
        for c in 0..gc.n() {
            if cur.bit(c) != d.bit(c) {
                cur = cur.flip(c);
                nodes.push(cur);
            }
        }
        Ok(Route::new(nodes))
    }
}

/// The lazily-built multitree atlas, or the reason it cannot exist for
/// the current cube shape.
#[derive(Debug)]
enum AtlasSlot {
    Empty,
    Ready(Arc<MultiTreeAtlas>),
    /// Construction failed (shape not biconnected) — remembered so the
    /// fallback path does not retry the build per packet.
    Unsupported {
        n: u32,
        modulus: u64,
    },
}

/// Multipath routing over independent spanning trees
/// ([`gcube_routing::multitree`]): route along one of `k` trees chosen by
/// flow hash, switch trees on faults, fall back to cached FTGCR when the
/// bundle is exhausted. Keeps delivering on fault sets past the Theorem-3
/// budget, where plain FTGCR starts refusing connected pairs.
#[derive(Debug)]
pub struct MultiTreeStrategy {
    trees: usize,
    atlas: RwLock<AtlasSlot>,
    shared: SharedCache,
}

impl MultiTreeStrategy {
    /// Strategy with `trees` spanning trees per ending class
    /// (`1..=`[`gcube_routing::multitree::MAX_TREES`]; the atlas build
    /// rejects anything else on first use).
    pub fn new(trees: usize) -> Self {
        MultiTreeStrategy {
            trees,
            atlas: RwLock::new(AtlasSlot::Empty),
            shared: SharedCache::default(),
        }
    }

    /// Number of trees requested per bundle.
    pub fn trees(&self) -> usize {
        self.trees
    }

    /// The atlas for `gc`, building it on first use. `None` when the
    /// shape does not admit independent spanning trees (not biconnected)
    /// — the strategy then degenerates to cached FTGCR.
    ///
    /// # Panics
    /// On an invalid tree count (caller error, not a shape property).
    pub fn atlas_for(&self, gc: &GaussianCube) -> Option<Arc<MultiTreeAtlas>> {
        {
            let guard = self.atlas.read();
            match &*guard {
                AtlasSlot::Ready(a) if a.matches(gc) => return Some(Arc::clone(a)),
                AtlasSlot::Unsupported { n, modulus }
                    if *n == gc.n() && *modulus == gc.modulus() =>
                {
                    return None;
                }
                _ => {}
            }
        }
        let mut guard = self.atlas.write();
        match &*guard {
            AtlasSlot::Ready(a) if a.matches(gc) => return Some(Arc::clone(a)),
            AtlasSlot::Unsupported { n, modulus } if *n == gc.n() && *modulus == gc.modulus() => {
                return None;
            }
            _ => {}
        }
        match MultiTreeAtlas::build(gc, self.trees) {
            Ok(atlas) => {
                let atlas = Arc::new(atlas);
                *guard = AtlasSlot::Ready(Arc::clone(&atlas));
                Some(atlas)
            }
            Err(gcube_routing::MultiTreeError::BadTreeCount(k)) => {
                panic!("invalid multitree tree count {k}");
            }
            Err(gcube_routing::MultiTreeError::NotBiconnected { .. }) => {
                *guard = AtlasSlot::Unsupported {
                    n: gc.n(),
                    modulus: gc.modulus(),
                };
                None
            }
        }
    }
}

impl RoutingAlgorithm for MultiTreeStrategy {
    fn name(&self) -> &'static str {
        "multitree"
    }
    fn compute_route(
        &self,
        gc: &GaussianCube,
        faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError> {
        self.plan_route(gc, faults, s, d).map(|p| p.route)
    }
    fn plan_route(
        &self,
        gc: &GaussianCube,
        faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<PlannedRoute, RoutingError> {
        let cache = self.shared.cache_for(gc);
        match self.atlas_for(gc) {
            Some(atlas) => atlas
                .route(gc, faults, s, d, Some(&cache))
                .map(|(route, choice)| PlannedRoute {
                    route,
                    tree: Some(choice),
                }),
            // Shape without independent trees: pure cached FTGCR, every
            // plan reported as an exhausted bundle of zero trees.
            None => ftgcr::route_cached(gc, faults, s, d, &cache).map(|(route, _)| PlannedRoute {
                route,
                tree: Some(TreeChoice {
                    tree: 0,
                    switches: 0,
                    exhausted: true,
                }),
            }),
        }
    }
    fn cache_stats(&self) -> Option<CacheStats> {
        self.shared.stats()
    }
    fn survives_bound_exceeded(&self) -> bool {
        true
    }
    fn tree_health(&self, gc: &GaussianCube, faults: &FaultSet) -> Option<Vec<TreeHealth>> {
        self.atlas_for(gc).map(|atlas| atlas.tree_health(faults))
    }
    fn wire_spec(&self) -> Option<(&'static str, usize)> {
        Some(("multitree", self.trees))
    }
}

/// Build an owned strategy from its wire name — the inverse of
/// [`RoutingAlgorithm::wire_spec`], shared by the daemon's `open` request
/// and checkpoint restore. `trees` only matters for `"multitree"`.
///
/// `"auto"` is rejected here on purpose: it resolves against a concrete
/// config (fault count and schedule), so callers must resolve it before a
/// strategy name goes on the wire or into a checkpoint.
pub fn build_strategy(
    name: &str,
    trees: usize,
) -> Result<Box<dyn RoutingAlgorithm + Send + Sync>, String> {
    match name {
        "ffgcr" => Ok(Box::new(CachedFfgcr::new())),
        "ftgcr" => Ok(Box::new(CachedFtgcr::new())),
        "multitree" => Ok(Box::new(MultiTreeStrategy::new(trees))),
        other => Err(format!(
            "unknown strategy {other:?} (expected ffgcr, ftgcr, or multitree)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::NoFaults;

    #[test]
    fn strategies_produce_valid_routes() {
        let gc = GaussianCube::new(7, 4).unwrap();
        let f = FaultSet::new();
        for s in (0..128u64).step_by(17) {
            for d in (0..128u64).step_by(13) {
                let r1 = FaultFreeGcr
                    .compute_route(&gc, &f, NodeId(s), NodeId(d))
                    .unwrap();
                r1.validate(&gc, &NoFaults).unwrap();
                let r2 = FaultTolerantGcr
                    .compute_route(&gc, &f, NodeId(s), NodeId(d))
                    .unwrap();
                r2.validate(&gc, &NoFaults).unwrap();
                assert_eq!(r1.hops(), r2.hops(), "fault-free FTGCR must stay optimal");
            }
        }
    }

    #[test]
    fn ecube_on_hypercube() {
        let gc = GaussianCube::new(6, 1).unwrap();
        let r = EcubeBaseline
            .compute_route(&gc, &FaultSet::new(), NodeId(0), NodeId(0b101101))
            .unwrap();
        r.validate(&gc, &NoFaults).unwrap();
        assert_eq!(r.hops() as u32, NodeId(0).hamming(NodeId(0b101101)));
    }

    #[test]
    #[should_panic(expected = "requires M = 1")]
    fn ecube_rejects_diluted_cubes() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let _ = EcubeBaseline.compute_route(&gc, &FaultSet::new(), NodeId(0), NodeId(1));
    }

    #[test]
    fn cache_stats_exposed_through_the_trait() {
        let gc = GaussianCube::new(7, 4).unwrap();
        let f = FaultSet::new();
        // Uncached strategies report nothing.
        assert_eq!(RoutingAlgorithm::cache_stats(&FaultFreeGcr), None);
        assert_eq!(RoutingAlgorithm::cache_stats(&FaultTolerantGcr), None);
        // Cached strategies report None before first use, counters after.
        let cached = CachedFfgcr::new();
        assert_eq!(RoutingAlgorithm::cache_stats(&cached), None);
        cached
            .compute_route(&gc, &f, NodeId(0), NodeId(99))
            .unwrap();
        let stats = RoutingAlgorithm::cache_stats(&cached).expect("stats after use");
        assert!(stats.misses >= 1 && stats.entries >= 1);
    }

    #[test]
    fn names() {
        assert_eq!(FaultFreeGcr.name(), "FFGCR");
        assert_eq!(FaultTolerantGcr.name(), "FTGCR");
        assert_eq!(EcubeBaseline.name(), "e-cube");
        assert_eq!(MultiTreeStrategy::new(2).name(), "multitree");
    }

    #[test]
    fn default_plan_route_carries_no_tree_data() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let f = FaultSet::new();
        let p = FaultTolerantGcr
            .plan_route(&gc, &f, NodeId(3), NodeId(40))
            .unwrap();
        assert!(p.tree.is_none());
        assert!(!FaultTolerantGcr.survives_bound_exceeded());
        assert!(FaultTolerantGcr.tree_health(&gc, &f).is_none());
    }

    #[test]
    fn multitree_plans_valid_routes_with_tree_data() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let f = FaultSet::new();
        let strat = MultiTreeStrategy::new(2);
        assert!(strat.survives_bound_exceeded());
        for s in (0..64u64).step_by(5) {
            for d in (0..64u64).step_by(7) {
                let p = strat.plan_route(&gc, &f, NodeId(s), NodeId(d)).unwrap();
                p.route.validate(&gc, &NoFaults).unwrap();
                let tc = p.tree.expect("multitree always reports a tree");
                assert!(!tc.exhausted);
                assert_eq!(tc.switches, 0);
                assert!(tc.tree < 2);
            }
        }
        let health = strat.tree_health(&gc, &f).expect("atlas built");
        assert_eq!(health.len(), 2);
        assert!(health.iter().all(|h| h.clean));
        // The FTGCR fallback cache is shared and reported through the trait.
        assert!(RoutingAlgorithm::cache_stats(&strat).is_some());
    }
}
