//! Routing strategies pluggable into the simulator.

use std::sync::Arc;

use gcube_routing::{ffgcr, ftgcr, CacheStats, FaultSet, PlanCache, Route, RoutingError};
use gcube_topology::{GaussianCube, NodeId};
use parking_lot::RwLock;

/// A routing algorithm the simulator can drive.
pub trait RoutingAlgorithm: Sync {
    /// Short name used in result tables.
    fn name(&self) -> &'static str;

    /// Compute the full trajectory for a packet.
    fn compute_route(
        &self,
        gc: &GaussianCube,
        faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError>;

    /// Plan-cache counters, for strategies backed by a
    /// [`PlanCache`] (`None` for uncached strategies, or before first
    /// use). Not free — snapshotting takes the cache's entry lock — so
    /// callers poll it at sample boundaries, not per packet.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }
}

/// FFGCR (Algorithm 3): optimal, fault-oblivious. Used for the fault-free
/// sweeps of Figures 5 and 6.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultFreeGcr;

impl RoutingAlgorithm for FaultFreeGcr {
    fn name(&self) -> &'static str {
        "FFGCR"
    }
    fn compute_route(
        &self,
        gc: &GaussianCube,
        _faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError> {
        ffgcr::route(gc, s, d)
    }
}

/// FTGCR (Theorem 5): the fault-tolerant strategy. Used for Figures 7/8.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultTolerantGcr;

impl RoutingAlgorithm for FaultTolerantGcr {
    fn name(&self) -> &'static str {
        "FTGCR"
    }
    fn compute_route(
        &self,
        gc: &GaussianCube,
        faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError> {
        ftgcr::route(gc, faults, s, d).map(|(r, _)| r)
    }
}

/// Lazily builds (and rebuilds on cube change) the [`PlanCache`] shared by
/// the cached strategies. A read lock covers the hot path so concurrent
/// sweep workers never serialise on a hit.
#[derive(Debug, Default)]
struct SharedCache {
    cache: RwLock<Option<Arc<PlanCache>>>,
}

impl SharedCache {
    fn cache_for(&self, gc: &GaussianCube) -> Arc<PlanCache> {
        {
            let guard = self.cache.read();
            if let Some(c) = guard.as_ref() {
                if c.matches(gc) {
                    return Arc::clone(c);
                }
            }
        }
        let mut guard = self.cache.write();
        if let Some(c) = guard.as_ref() {
            if c.matches(gc) {
                return Arc::clone(c);
            }
        }
        let built = Arc::new(PlanCache::new(gc));
        *guard = Some(Arc::clone(&built));
        built
    }

    fn stats(&self) -> Option<CacheStats> {
        self.cache.read().as_ref().map(|c| c.stats())
    }
}

/// FFGCR served from a [`PlanCache`]: identical routes to [`FaultFreeGcr`]
/// (property-tested), with the tree walk memoised per ending-class pair.
#[derive(Debug, Default)]
pub struct CachedFfgcr {
    shared: SharedCache,
}

impl CachedFfgcr {
    /// Create a strategy with an empty cache; it fills on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hit/miss counters of the underlying cache (`None` before first use).
    pub fn stats(&self) -> Option<CacheStats> {
        self.shared.stats()
    }
}

impl RoutingAlgorithm for CachedFfgcr {
    fn name(&self) -> &'static str {
        "FFGCR+cache"
    }
    fn compute_route(
        &self,
        gc: &GaussianCube,
        _faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError> {
        self.shared.cache_for(gc).route(gc, s, d)
    }
    fn cache_stats(&self) -> Option<CacheStats> {
        self.stats()
    }
}

/// FTGCR with the fault-free planning stage served from a [`PlanCache`];
/// fault repair stays per-packet, so behaviour is identical to
/// [`FaultTolerantGcr`] (property-tested).
#[derive(Debug, Default)]
pub struct CachedFtgcr {
    shared: SharedCache,
}

impl CachedFtgcr {
    /// Create a strategy with an empty cache; it fills on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hit/miss counters of the underlying cache (`None` before first use).
    pub fn stats(&self) -> Option<CacheStats> {
        self.shared.stats()
    }
}

impl RoutingAlgorithm for CachedFtgcr {
    fn name(&self) -> &'static str {
        "FTGCR+cache"
    }
    fn compute_route(
        &self,
        gc: &GaussianCube,
        faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError> {
        let cache = self.shared.cache_for(gc);
        ftgcr::route_cached(gc, faults, s, d, &cache).map(|(r, _)| r)
    }
    fn cache_stats(&self) -> Option<CacheStats> {
        self.stats()
    }
}

/// Dimension-ordered e-cube on the binary hypercube (`M = 1` only):
/// the classic baseline the paper's family generalises.
#[derive(Clone, Copy, Debug, Default)]
pub struct EcubeBaseline;

impl RoutingAlgorithm for EcubeBaseline {
    fn name(&self) -> &'static str {
        "e-cube"
    }
    fn compute_route(
        &self,
        gc: &GaussianCube,
        _faults: &FaultSet,
        s: NodeId,
        d: NodeId,
    ) -> Result<Route, RoutingError> {
        assert!(gc.is_hypercube(), "e-cube baseline requires M = 1");
        let mut nodes = vec![s];
        let mut cur = s;
        for c in 0..gc.n() {
            if cur.bit(c) != d.bit(c) {
                cur = cur.flip(c);
                nodes.push(cur);
            }
        }
        Ok(Route::new(nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcube_topology::NoFaults;

    #[test]
    fn strategies_produce_valid_routes() {
        let gc = GaussianCube::new(7, 4).unwrap();
        let f = FaultSet::new();
        for s in (0..128u64).step_by(17) {
            for d in (0..128u64).step_by(13) {
                let r1 = FaultFreeGcr
                    .compute_route(&gc, &f, NodeId(s), NodeId(d))
                    .unwrap();
                r1.validate(&gc, &NoFaults).unwrap();
                let r2 = FaultTolerantGcr
                    .compute_route(&gc, &f, NodeId(s), NodeId(d))
                    .unwrap();
                r2.validate(&gc, &NoFaults).unwrap();
                assert_eq!(r1.hops(), r2.hops(), "fault-free FTGCR must stay optimal");
            }
        }
    }

    #[test]
    fn ecube_on_hypercube() {
        let gc = GaussianCube::new(6, 1).unwrap();
        let r = EcubeBaseline
            .compute_route(&gc, &FaultSet::new(), NodeId(0), NodeId(0b101101))
            .unwrap();
        r.validate(&gc, &NoFaults).unwrap();
        assert_eq!(r.hops() as u32, NodeId(0).hamming(NodeId(0b101101)));
    }

    #[test]
    #[should_panic(expected = "requires M = 1")]
    fn ecube_rejects_diluted_cubes() {
        let gc = GaussianCube::new(6, 2).unwrap();
        let _ = EcubeBaseline.compute_route(&gc, &FaultSet::new(), NodeId(0), NodeId(1));
    }

    #[test]
    fn cache_stats_exposed_through_the_trait() {
        let gc = GaussianCube::new(7, 4).unwrap();
        let f = FaultSet::new();
        // Uncached strategies report nothing.
        assert_eq!(RoutingAlgorithm::cache_stats(&FaultFreeGcr), None);
        assert_eq!(RoutingAlgorithm::cache_stats(&FaultTolerantGcr), None);
        // Cached strategies report None before first use, counters after.
        let cached = CachedFfgcr::new();
        assert_eq!(RoutingAlgorithm::cache_stats(&cached), None);
        cached
            .compute_route(&gc, &f, NodeId(0), NodeId(99))
            .unwrap();
        let stats = RoutingAlgorithm::cache_stats(&cached).expect("stats after use");
        assert!(stats.misses >= 1 && stats.entries >= 1);
    }

    #[test]
    fn names() {
        assert_eq!(FaultFreeGcr.name(), "FFGCR");
        assert_eq!(FaultTolerantGcr.name(), "FTGCR");
        assert_eq!(EcubeBaseline.name(), "e-cube");
    }
}
