//! Cycle-driven network simulator for Gaussian Cubes (paper §6).
//!
//! Reproduces the paper's evaluation model:
//!
//! 1. source and destination nodes are non-faulty;
//! 2. *eager readership*: packet service is faster than packet arrival —
//!    modelled as store-and-forward with unbounded FIFO queues, one packet
//!    per directed link per cycle, and instantaneous sinking at the
//!    destination;
//! 3. a faulty node makes all of its incident links faulty;
//! 4. nodes know their incident link status and the B/C faults of their
//!    ending class (the routing algorithms consume the global [`FaultSet`]
//!    accordingly).
//!
//! Metrics match the paper: **average latency** `LP/DP` (total latency of
//! delivered packets over their count, in cycles) and **throughput**
//! `DP/PT` (delivered packets per cycle of total processing time), plotted
//! as `log2` in Figures 6 and 8.
//!
//! Beyond the paper's static evaluation, the [`injection`] module adds
//! *dynamic* fault churn — seeded timed fault events (permanent,
//! transient, intermittent) applied while packets are in flight — and the
//! engine recovers online: local re-routes under a budget and TTL, with a
//! stale-knowledge window modelling the paper's claim-4 fault-status
//! exchange. See [`engine`] for the recovery semantics and
//! [`metrics::ChurnReport`] for the degradation time series.
//!
//! [`FaultSet`]: gcube_routing::FaultSet

pub mod artifact;
pub mod checkpoint;
pub mod collective;
pub mod config;
pub mod engine;
pub mod error;
pub mod injection;
pub mod metrics;
pub mod packet;
pub mod profiler;
pub mod proto;
pub mod replay;
pub mod runner;
pub mod server;
pub mod session;
mod shard;
mod soa;
pub mod strategy;
pub mod telemetry;
pub mod trace;
pub mod traffic;

pub use artifact::{ArtifactKind, ArtifactMeta, ARTIFACT_FORMAT};
pub use checkpoint::Checkpoint;
pub use collective::{is_collective, op_of, COLLECTIVE_BIT};
pub use config::{CollectiveOp, KnowledgeModel, SimConfig};
pub use engine::Simulator;
pub use error::SimError;
pub use injection::{
    CategoryMix, FaultAction, FaultEvent, FaultInjector, FaultKind, FaultSchedule, FaultTarget,
    TimedFault,
};
pub use metrics::{ChurnReport, Histogram, Metrics, OpStat, WindowStat};
pub use profiler::{
    NullProfiler, ProfSample, ProfileCollector, ProfileSample, ProfilerSink, ShardProfile,
};
pub use proto::Request;
pub use replay::{parse_jsonl, parse_jsonl_with_meta, verify_replay, ReplayError};
pub use runner::{run_churn_sweep, run_sweep, ChurnPoint, SweepPoint};
pub use server::{resolve_strategy_name, serve, ServerConfig};
pub use session::{effective_shards, resolve_threads, SimSession, Stepper};
pub use shard::class_ranges;
pub use strategy::{
    build_strategy, CachedFfgcr, CachedFtgcr, EcubeBaseline, FaultFreeGcr, FaultTolerantGcr,
    MultiTreeStrategy, PlannedRoute, RoutingAlgorithm, TreeChoice, TreeHealth,
};
pub use telemetry::{
    CycleView, FaultBudgetMonitor, HealthTransition, NullTelemetry, Phase, ShardTelemetry,
    TelemetryCollector, TelemetrySample, TelemetrySink,
};
pub use trace::{
    DropCause, JsonlSink, MemorySink, NullSink, TraceEvent, TraceEventKind, TraceSink,
};
pub use traffic::TrafficPattern;
