//! Artifact schema stamping: a `meta` header line for the JSONL
//! artifacts (trace, telemetry, profile).
//!
//! Recorded artifacts outlive the run that produced them — they get
//! diffed across machines in CI and fed back into `gcube-cli analyze`.
//! A bare event stream carries no provenance, so two files from
//! different cubes or seeds diff "cleanly" into nonsense. Writers
//! therefore stamp the first line of every artifact with an
//! [`ArtifactMeta`]: artifact kind, format version, cube shape, seed,
//! thread count, and strategy name. Readers validate the header and
//! refuse mismatched artifacts; a file *without* a header is treated as
//! format v0 (pre-stamping, PR 3/4 era) for back-compat.
//!
//! Like the trace schema, the header is hand-rolled flat JSON — this
//! workspace vendors no JSON library.

use std::fmt;

/// Current artifact format version written by this build.
pub const ARTIFACT_FORMAT: u64 = 1;

/// Which artifact stream a file carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Per-packet flight-recorder events ([`crate::trace`]).
    Trace,
    /// Per-window telemetry series ([`crate::telemetry`]).
    Telemetry,
    /// Profiler samples ([`crate::profiler`]).
    Profile,
    /// Mid-run engine checkpoint ([`crate::checkpoint`]).
    Checkpoint,
}

impl ArtifactKind {
    /// Stable lower-case name used in the header line.
    pub fn as_str(self) -> &'static str {
        match self {
            ArtifactKind::Trace => "trace",
            ArtifactKind::Telemetry => "telemetry",
            ArtifactKind::Profile => "profile",
            ArtifactKind::Checkpoint => "checkpoint",
        }
    }

    /// Inverse of [`as_str`](ArtifactKind::as_str). (Not the `FromStr`
    /// trait: absence of a kind is ordinary data here, not an error.)
    pub fn parse(s: &str) -> Option<ArtifactKind> {
        match s {
            "trace" => Some(ArtifactKind::Trace),
            "telemetry" => Some(ArtifactKind::Telemetry),
            "profile" => Some(ArtifactKind::Profile),
            "checkpoint" => Some(ArtifactKind::Checkpoint),
            _ => None,
        }
    }
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Provenance header for a recorded artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Which stream the file carries.
    pub kind: ArtifactKind,
    /// Schema format version ([`ARTIFACT_FORMAT`] for new files).
    pub format: u64,
    /// Cube dimension count `n`.
    pub n: u64,
    /// Cube modulus (`2^k`).
    pub modulus: u64,
    /// Traffic/fault RNG seed.
    pub seed: u64,
    /// Worker threads the run used (1 = sequential engine).
    pub threads: u64,
    /// Routing strategy name as the CLI spells it.
    pub strategy: String,
}

impl ArtifactMeta {
    /// Render the header as one JSONL line (no trailing newline).
    pub fn to_jsonl_line(&self) -> String {
        format!(
            "{{\"meta\":\"{}\",\"format\":{},\"n\":{},\"modulus\":{},\"seed\":{},\
             \"threads\":{},\"strategy\":\"{}\"}}",
            self.kind.as_str(),
            self.format,
            self.n,
            self.modulus,
            self.seed,
            self.threads,
            self.strategy,
        )
    }

    /// Whether `line` looks like a meta header (cheap check; parsing
    /// may still fail).
    pub fn is_meta_line(line: &str) -> bool {
        line.trim_start().starts_with("{\"meta\":")
    }

    /// Parse a header line. Returns `None` when `line` is not a meta
    /// line at all (v0 artifact), `Some(Err)` when it is one but is
    /// malformed or from an unsupported future format.
    pub fn parse(line: &str) -> Option<Result<ArtifactMeta, String>> {
        let line = line.trim();
        if !Self::is_meta_line(line) {
            return None;
        }
        Some(Self::parse_strict(line))
    }

    fn parse_strict(line: &str) -> Result<ArtifactMeta, String> {
        let body = line
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| "meta line is not a JSON object".to_string())?;
        let mut kind = None;
        let mut format = None;
        let mut n = None;
        let mut modulus = None;
        let mut seed = None;
        let mut threads = None;
        let mut strategy = None;
        for field in body.split(',') {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| format!("malformed meta field {field:?}"))?;
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("malformed meta key in {field:?}"))?;
            let value = value.trim();
            let num = || -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("meta field {key:?}: expected integer, got {value:?}"))
            };
            let text = || -> Result<&str, String> {
                value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("meta field {key:?}: expected string, got {value:?}"))
            };
            match key {
                "meta" => {
                    let t = text()?;
                    kind = Some(
                        ArtifactKind::parse(t)
                            .ok_or_else(|| format!("unknown artifact kind {t:?}"))?,
                    )
                }
                "format" => format = Some(num()?),
                "n" => n = Some(num()?),
                "modulus" => modulus = Some(num()?),
                "seed" => seed = Some(num()?),
                "threads" => threads = Some(num()?),
                "strategy" => strategy = Some(text()?.to_string()),
                other => return Err(format!("unknown meta field {other:?}")),
            }
        }
        let missing = |k: &str| format!("meta header missing field {k:?}");
        let meta = ArtifactMeta {
            kind: kind.ok_or_else(|| missing("meta"))?,
            format: format.ok_or_else(|| missing("format"))?,
            n: n.ok_or_else(|| missing("n"))?,
            modulus: modulus.ok_or_else(|| missing("modulus"))?,
            seed: seed.ok_or_else(|| missing("seed"))?,
            threads: threads.ok_or_else(|| missing("threads"))?,
            strategy: strategy.ok_or_else(|| missing("strategy"))?,
        };
        if meta.format > ARTIFACT_FORMAT {
            return Err(format!(
                "artifact format {} is newer than supported format {ARTIFACT_FORMAT}",
                meta.format
            ));
        }
        Ok(meta)
    }

    /// Check that `other` describes the same run shape: same kind,
    /// cube, seed, and strategy. Thread count is deliberately *not*
    /// compared — the deterministic streams are thread-invariant, and
    /// cross-thread diffing is precisely what the A/B gate does.
    pub fn check_compatible(&self, other: &ArtifactMeta) -> Result<(), String> {
        if self.kind != other.kind {
            return Err(format!(
                "artifact kind mismatch: {} vs {}",
                self.kind, other.kind
            ));
        }
        if (self.n, self.modulus) != (other.n, other.modulus) {
            return Err(format!(
                "cube mismatch: GC({}, {}) vs GC({}, {})",
                self.n, self.modulus, other.n, other.modulus
            ));
        }
        if self.seed != other.seed {
            return Err(format!("seed mismatch: {} vs {}", self.seed, other.seed));
        }
        if self.strategy != other.strategy {
            return Err(format!(
                "strategy mismatch: {} vs {}",
                self.strategy, other.strategy
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ArtifactMeta {
        ArtifactMeta {
            kind: ArtifactKind::Trace,
            format: ARTIFACT_FORMAT,
            n: 6,
            modulus: 2,
            seed: 42,
            threads: 4,
            strategy: "ftgcr".to_string(),
        }
    }

    #[test]
    fn header_round_trips() {
        let m = meta();
        let line = m.to_jsonl_line();
        assert!(ArtifactMeta::is_meta_line(&line));
        assert_eq!(ArtifactMeta::parse(&line).unwrap().unwrap(), m);
    }

    #[test]
    fn event_lines_are_not_meta() {
        assert!(ArtifactMeta::parse("{\"cycle\":0,\"packet\":1}").is_none());
        assert!(ArtifactMeta::parse("").is_none());
    }

    #[test]
    fn malformed_and_future_headers_are_rejected() {
        assert!(ArtifactMeta::parse("{\"meta\":\"trace\"}")
            .unwrap()
            .is_err());
        assert!(ArtifactMeta::parse("{\"meta\":\"warp\",\"format\":1}")
            .unwrap()
            .is_err());
        let mut m = meta();
        m.format = ARTIFACT_FORMAT + 1;
        let err = ArtifactMeta::parse(&m.to_jsonl_line())
            .unwrap()
            .unwrap_err();
        assert!(err.contains("newer than supported"), "{err}");
    }

    #[test]
    fn compatibility_ignores_threads_but_not_shape() {
        let a = meta();
        let mut b = meta();
        b.threads = 1;
        assert!(a.check_compatible(&b).is_ok(), "threads must not matter");
        b.seed = 43;
        assert!(a.check_compatible(&b).is_err());
        let mut c = meta();
        c.n = 8;
        assert!(a.check_compatible(&c).is_err());
        let mut d = meta();
        d.kind = ArtifactKind::Telemetry;
        assert!(a.check_compatible(&d).is_err());
        let mut e = meta();
        e.strategy = "ffgcr".to_string();
        assert!(a.check_compatible(&e).is_err());
    }
}
