//! The `SimSession` builder — the simulator's single front door.
//!
//! The engine used to grow one entry point per observer combination
//! (`run`, `run_report`, `run_traced`, `run_instrumented<S, T>`); the
//! sharded engine would have forced a fifth. A session composes instead:
//!
//! ```
//! use gcube_sim::{MemorySink, SimConfig, Simulator, FaultFreeGcr};
//!
//! let sim = Simulator::new(SimConfig::new(6, 2), &FaultFreeGcr);
//! let mut sink = MemorySink::new();
//! let report = sim.session().threads(2).trace(&mut sink).run();
//! assert_eq!(report.metrics.delivered, report.metrics.injected);
//! ```
//!
//! `trace`, `telemetry`, and `profile` rebind the session's sink type
//! parameters, so the engine still monomorphises over the sinks: a
//! session that never attaches one compiles to the same zero-observer
//! loop as before. `threads(n)` selects the deterministic shard engine
//! ([`crate::shard`]) for `n > 1`; its output is bitwise identical to
//! the sequential loop for any thread count.

use gcube_topology::GaussianCube;

use crate::checkpoint::Checkpoint;
use crate::engine::{EngineCore, Simulator};
use crate::error::SimError;
use crate::metrics::ChurnReport;
use crate::profiler::{NullProfiler, ProfilerSink};
use crate::shard;
use crate::telemetry::{NullTelemetry, TelemetrySink};
use crate::trace::{NullSink, TraceSink};

/// Resolve a requested thread count: `0` means "use all available
/// parallelism", anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// How many shards a run on `gc` with `threads` threads actually uses:
/// ending classes are the shard key (Theorem 2), so the count is capped
/// at `2^α`. One shard means the sequential engine.
pub fn effective_shards(gc: &GaussianCube, threads: usize) -> usize {
    threads.max(1).min(1 << gc.alpha())
}

/// A configured-but-not-yet-started run: thread count plus the attached
/// observers. Built by [`Simulator::session`], consumed by
/// [`SimSession::run`] / [`SimSession::try_run`].
pub struct SimSession<'s, 'a, S = NullSink, T = NullTelemetry, P = NullProfiler> {
    sim: &'s Simulator<'a>,
    threads: usize,
    trace: S,
    telemetry: T,
    profiler: P,
}

impl<'s, 'a> SimSession<'s, 'a> {
    pub(crate) fn new(sim: &'s Simulator<'a>) -> Self {
        SimSession {
            sim,
            threads: 1,
            trace: NullSink,
            telemetry: NullTelemetry,
            profiler: NullProfiler,
        }
    }
}

impl<'s, 'a, S: TraceSink, T: TelemetrySink, P: ProfilerSink> SimSession<'s, 'a, S, T, P> {
    /// Worker threads for the shard engine. `0` resolves to the machine's
    /// available parallelism; the default is `1` (sequential). The
    /// effective shard count is capped at the cube's `2^α` ending
    /// classes — see [`effective_shards`].
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Attach a flight recorder: every per-packet event is streamed into
    /// `sink` in deterministic engine order (identical for every thread
    /// count). Pass `&mut sink` to keep the sink afterwards.
    #[must_use]
    pub fn trace<S2: TraceSink>(self, sink: S2) -> SimSession<'s, 'a, S2, T, P> {
        SimSession {
            sim: self.sim,
            threads: self.threads,
            trace: sink,
            telemetry: self.telemetry,
            profiler: self.profiler,
        }
    }

    /// Attach a telemetry sink sampling the per-window time series. Pass
    /// `&mut collector` to keep the collector afterwards.
    #[must_use]
    pub fn telemetry<T2: TelemetrySink>(self, telemetry: T2) -> SimSession<'s, 'a, S, T2, P> {
        SimSession {
            sim: self.sim,
            threads: self.threads,
            trace: self.trace,
            telemetry,
            profiler: self.profiler,
        }
    }

    /// Attach a performance profiler recording per-cycle deterministic
    /// counters plus report-only wall-clock/per-shard breakdowns —
    /// independent of `telemetry`. Pass `&mut collector` to keep the
    /// collector afterwards.
    #[must_use]
    pub fn profile<P2: ProfilerSink>(self, profiler: P2) -> SimSession<'s, 'a, S, T, P2> {
        SimSession {
            sim: self.sim,
            threads: self.threads,
            trace: self.trace,
            telemetry: self.telemetry,
            profiler,
        }
    }

    /// Run to completion. Like [`Simulator::new`], panics on a session
    /// the engine refuses to start; use [`SimSession::try_run`] to handle
    /// that as an error.
    pub fn run(self) -> ChurnReport {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("invalid simulation session: {e}"),
        }
    }

    /// Run to completion, reporting refusals (currently only finite
    /// buffers combined with a sharded run) as a [`SimError`].
    pub fn try_run(mut self) -> Result<ChurnReport, SimError> {
        let threads = resolve_threads(self.threads);
        let shards = effective_shards(self.sim.cube(), threads);
        if shards > 1 && self.sim.config().buffer_capacity.is_some() {
            return Err(SimError::FiniteBuffersRequireSingleThread);
        }
        Ok(if shards > 1 {
            shard::run_sharded(
                self.sim,
                shards,
                &mut self.trace,
                &mut self.telemetry,
                &mut self.profiler,
            )
        } else {
            self.sim
                .run_sequential(&mut self.trace, &mut self.telemetry, &mut self.profiler)
        })
    }

    /// Start the run paused at cycle 0 instead of running it to
    /// completion: the returned [`Stepper`] advances one cycle per call
    /// and can checkpoint between cycles.
    ///
    /// A stepper always drives the sequential reference engine —
    /// `threads(n)` is ignored. The deterministic outputs are
    /// thread-invariant, so this changes nothing observable; callers
    /// needing parallelism multiplex many steppers (as `gcube serve`
    /// does) rather than sharding one.
    pub fn stepper(mut self) -> Stepper<'s, 'a, S, T, P> {
        let core = EngineCore::new(self.sim, &mut self.trace, &mut self.telemetry);
        Stepper {
            sim: self.sim,
            core,
            trace: self.trace,
            telemetry: self.telemetry,
            profiler: self.profiler,
        }
    }

    /// Resume a run from a [`Checkpoint`] instead of cycle 0. The
    /// session's simulator must match the checkpoint's config and
    /// strategy; the attached trace sink receives only events from the
    /// checkpoint's cycle onward (the prefix lives wherever the original
    /// run recorded it — see [`Checkpoint::trace_mark`]).
    pub fn stepper_from(self, checkpoint: &Checkpoint) -> Result<Stepper<'s, 'a, S, T, P>, String> {
        let core = checkpoint.rebuild(self.sim)?;
        Ok(Stepper {
            sim: self.sim,
            core,
            trace: self.trace,
            telemetry: self.telemetry,
            profiler: self.profiler,
        })
    }
}

/// A paused, single-steppable run: the daemon's unit of scheduling.
/// Created by [`SimSession::stepper`] (fresh at cycle 0, sinks already
/// holding the cycle-0 events) or [`SimSession::stepper_from`] (resumed
/// from a checkpoint).
pub struct Stepper<'s, 'a, S = NullSink, T = NullTelemetry, P = NullProfiler> {
    sim: &'s Simulator<'a>,
    core: EngineCore,
    trace: S,
    telemetry: T,
    profiler: P,
}

impl<'s, 'a, S: TraceSink, T: TelemetrySink, P: ProfilerSink> Stepper<'s, 'a, S, T, P> {
    /// Execute one cycle. Returns `true` once the run is complete;
    /// further calls are no-ops returning `true`.
    pub fn step(&mut self) -> bool {
        self.core.step(
            self.sim,
            &mut self.trace,
            &mut self.telemetry,
            &mut self.profiler,
        )
    }

    /// Execute up to `cycles` cycles, stopping early when the run
    /// completes. Returns whether the run is now complete.
    pub fn step_many(&mut self, cycles: u64) -> bool {
        for _ in 0..cycles {
            if self.step() {
                return true;
            }
        }
        self.is_done()
    }

    /// The next cycle [`Stepper::step`] will execute.
    pub fn cycle(&self) -> u64 {
        self.core.cycle
    }

    /// Whether the run has executed its last cycle.
    pub fn is_done(&self) -> bool {
        self.core.is_done()
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.core.in_flight
    }

    /// The simulator this run executes on.
    pub fn sim(&self) -> &'s Simulator<'a> {
        self.sim
    }

    /// Serialize the paused state. `trace_mark` is how many trace events
    /// this run has emitted so far (`sink.events().len()` when recording
    /// into a [`crate::trace::MemorySink`]; 0 when untraced) — see
    /// [`Checkpoint::trace_mark`]. Fails for strategies without a wire
    /// identity (the e-cube baseline).
    pub fn checkpoint(&self, trace_mark: u64) -> Result<Checkpoint, String> {
        Checkpoint::capture(self.sim, &self.core, trace_mark)
    }

    /// Close out the run and build its report (call once done; see
    /// [`SimSession::try_run`] for the run-to-completion shortcut).
    pub fn finish(mut self) -> ChurnReport {
        self.core
            .finish(self.sim, &mut self.telemetry, &mut self.profiler)
    }
}
