//! Per-shard performance profiler: the third zero-cost-when-off sink
//! family next to [`crate::trace::TraceSink`] and
//! [`crate::telemetry::TelemetrySink`].
//!
//! The shard engine computes a number of quantities every cycle that it
//! then throws away — how many injection requests the coordinator
//! planned, how many packets advanced, how the per-ending-class queues
//! are balanced, how long each worker sat in the barrier versus doing
//! work, how many plan units each thread stole off the shared cursor,
//! and how many packets/events crossed the exchange mailboxes. A
//! [`ProfilerSink`] receives all of them; the engine monomorphises over
//! the sink type so the [`NullProfiler`] path folds to dead code exactly
//! like the other two sink families.
//!
//! # Deterministic vs report-only: the strict split
//!
//! Profiler output is split into two classes and the split is part of
//! the API contract:
//!
//! * **Deterministic counters** — per-cycle injection requests, moved
//!   packets (forwarded hops), in-flight population, per-ending-class
//!   queue depth/occupancy and the derived load-imbalance factor, and
//!   plan-cache hit/miss deltas. These are pure functions of the
//!   [`SimConfig`](crate::config::SimConfig) and routing algorithm:
//!   bitwise identical between the sequential engine and the sharded
//!   engine at *any* thread count, and therefore replay-comparable
//!   (the `analyze` run-diff mode and the CI 1-vs-4-thread gate diff
//!   exactly these fields).
//! * **Report-only fields** — wall-clock phase times, per-shard
//!   barrier-wait versus work time, per-thread steal-unit claims and
//!   exchange mailbox volumes. Wall clock is obviously
//!   non-deterministic; steal claims race on an atomic cursor and
//!   mailbox volumes depend on the shard count, so even their integer
//!   values are scheduling- or thread-count-dependent. They appear only
//!   in the human report and in JSONL lines tagged `"report_only":true`,
//!   never in the deterministic stream.
//!
//! The aggregate *totals* of steal units and exchange volumes are
//! thread-invariant for a fixed shard count (every unit is claimed
//! exactly once, every non-arriving advance crosses a mailbox exactly
//! once), but a 1-thread run has no units or mailboxes at all, so those
//! totals still cannot live in the deterministic stream.

use std::collections::VecDeque;
use std::fmt::Write as _;

use gcube_routing::CacheStats;

use crate::metrics::Histogram;
use crate::telemetry::{Phase, NUM_PHASES};

/// Ring capacity for retained per-window samples (matches the
/// telemetry collector).
pub const DEFAULT_PROFILE_RING: usize = 4096;

/// One cycle's worth of deterministic counters, handed to
/// [`ProfilerSink::cycle_sample`] at the end of every cycle.
///
/// Every field is identical between the sequential and sharded engines:
/// the borrowed class slices are the same end-of-cycle snapshots the
/// telemetry reduction folds, and `cache` is fetched at a quiescent
/// point in both engines.
#[derive(Clone, Copy, Debug)]
pub struct ProfSample<'a> {
    /// Cycle index (0-based).
    pub cycle: u64,
    /// Injection *requests* planned this cycle (before suppression by a
    /// faulty source/destination is irrelevant — requests are counted at
    /// packet-id assignment, so the count is engine-invariant).
    pub injected: u64,
    /// Packets that advanced one hop this cycle (forwarded hops).
    pub moved: u64,
    /// Packets still queued somewhere at the end of the cycle.
    pub in_flight: u64,
    /// Queued packets per ending class at the end of the cycle.
    pub class_queued: &'a [u64],
    /// Nodes with a non-empty queue per ending class.
    pub class_occupied: &'a [u64],
    /// Plan-cache counters, present only on cycles where
    /// [`ProfilerSink::wants_cache`] returned `true`.
    pub cache: Option<CacheStats>,
}

/// Whole-run, per-shard counters published by each worker (and the
/// coordinator, shard 0) when it exits. **Report-only**: steal claims
/// race on the plan cursor and the nano fields are wall clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardProfile {
    /// Cycles this shard executed.
    pub cycles: u64,
    /// Plan units this thread claimed off the shared cursor
    /// (work-stealing; includes its own classes).
    pub steal_units: u64,
    /// Injection requests planned inside those units.
    pub planned_reqs: u64,
    /// Moved packets published to this shard's own mailbox.
    pub moves_self: u64,
    /// Moved packets published to other shards' mailboxes.
    pub moves_out: u64,
    /// Trace events appended to the exchange.
    pub events_out: u64,
    /// Wall-clock nanoseconds spent inside [`SpinBarrier::wait`]
    /// (coordination overhead; the complement of work time).
    ///
    /// [`SpinBarrier::wait`]: crate::shard
    pub barrier_nanos: u64,
    /// Wall-clock nanoseconds for the shard's whole run loop.
    pub run_nanos: u64,
}

impl ShardProfile {
    /// Barrier share of the run loop, `0.0..=1.0` (`0.0` when the run
    /// time was not measured).
    pub fn barrier_fraction(&self) -> f64 {
        if self.run_nanos == 0 {
            0.0
        } else {
            self.barrier_nanos as f64 / self.run_nanos as f64
        }
    }
}

/// Observer interface for engine performance counters.
///
/// The engine monomorphises over `P: ProfilerSink`, so with
/// [`NullProfiler`] (whose [`enabled`](ProfilerSink::enabled) is a
/// constant `false`) every guarded hook folds to dead code — the off
/// path stays allocation-free and branch-free like the trace and
/// telemetry sinks.
pub trait ProfilerSink {
    /// Fast guard the engine checks before assembling samples.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Whether this sink wants plan-cache counters fetched for `cycle`.
    /// Cache stats cost a lock acquisition, so they are sampled, not
    /// fetched every cycle.
    #[inline]
    fn wants_cache(&self, _cycle: u64) -> bool {
        false
    }

    /// End-of-cycle deterministic counters.
    fn cycle_sample(&mut self, _sample: &ProfSample<'_>) {}

    /// Wall-clock time spent in `phase` (report-only).
    fn phase_time(&mut self, _phase: Phase, _nanos: u64) {}

    /// Whole-run counters for one shard (report-only). The sequential
    /// engine emits none; the sharded engine emits one per shard.
    fn shard_profile(&mut self, _shard: usize, _profile: &ShardProfile) {}

    /// The run ended after `cycles` cycles on `shards` shards.
    fn finish_run(&mut self, _cycles: u64, _shards: usize) {}
}

/// Disabled profiler: all hooks compile away.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProfiler;

impl ProfilerSink for NullProfiler {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

impl<P: ProfilerSink + ?Sized> ProfilerSink for &mut P {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    #[inline]
    fn wants_cache(&self, cycle: u64) -> bool {
        (**self).wants_cache(cycle)
    }
    fn cycle_sample(&mut self, sample: &ProfSample<'_>) {
        (**self).cycle_sample(sample)
    }
    fn phase_time(&mut self, phase: Phase, nanos: u64) {
        (**self).phase_time(phase, nanos)
    }
    fn shard_profile(&mut self, shard: usize, profile: &ShardProfile) {
        (**self).shard_profile(shard, profile)
    }
    fn finish_run(&mut self, cycles: u64, shards: usize) {
        (**self).finish_run(cycles, shards)
    }
}

/// One retained per-window deterministic sample row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileSample {
    /// Cycle that closed the window (0-based).
    pub cycle: u64,
    /// Injection requests planned during the window.
    pub injected: u64,
    /// Forwarded hops during the window.
    pub moved: u64,
    /// In-flight packets at the window end.
    pub in_flight: u64,
    /// Total queued packets across ending classes at the window end.
    pub queued_total: u64,
    /// Deepest ending-class queue at the window end.
    pub queued_max: u64,
    /// Nodes with non-empty queues at the window end.
    pub occupied_total: u64,
    /// Load-imbalance factor in milli-units: `1000` = perfectly
    /// balanced, `classes * 1000` = everything in one class (and, by
    /// convention, `1000` when nothing is queued).
    pub imbalance_milli: u64,
    /// Plan-cache hits during the window (0 when the strategy caches
    /// nothing).
    pub cache_hits: u64,
    /// Plan-cache misses during the window.
    pub cache_misses: u64,
    /// Plan-cache resident entries at the window end.
    pub cache_entries: u64,
}

/// `floor(log2(v)) + 1` bucketing for the streaming histograms: bucket
/// 0 holds zeros, bucket `i >= 1` holds values in `[2^(i-1), 2^i)`.
#[inline]
fn log2_bucket(v: u64) -> u64 {
    (u64::BITS - v.leading_zeros()) as u64
}

/// In-memory [`ProfilerSink`]: streams per-cycle counters into log2
/// histograms and running totals, retains per-window sample rows in a
/// bounded ring, and keeps wall-clock fields strictly apart from the
/// deterministic stream.
#[derive(Clone, Debug)]
pub struct ProfileCollector {
    interval: u64,
    classes: usize,
    ring_capacity: usize,
    samples: VecDeque<ProfileSample>,
    dropped_samples: u64,
    // Window accumulators (deterministic).
    win_injected: u64,
    win_moved: u64,
    last_cache: CacheStats,
    // Whole-run deterministic aggregates.
    cycles: u64,
    injected_total: u64,
    moved_total: u64,
    max_in_flight: u64,
    imb_sum_milli: u128,
    imb_max_milli: u64,
    moved_hist: Histogram,
    in_flight_hist: Histogram,
    // Report-only.
    phase_nanos: [u64; NUM_PHASES],
    shards: usize,
    shard_profiles: Vec<(usize, ShardProfile)>,
}

impl ProfileCollector {
    /// A collector for a cube with `classes` ending classes, closing a
    /// sample window every `interval` cycles (`interval` is clamped to
    /// at least 1).
    pub fn new(classes: usize, interval: u64) -> ProfileCollector {
        ProfileCollector {
            interval: interval.max(1),
            classes: classes.max(1),
            ring_capacity: DEFAULT_PROFILE_RING,
            samples: VecDeque::new(),
            dropped_samples: 0,
            win_injected: 0,
            win_moved: 0,
            last_cache: CacheStats::default(),
            cycles: 0,
            injected_total: 0,
            moved_total: 0,
            max_in_flight: 0,
            imb_sum_milli: 0,
            imb_max_milli: 0,
            moved_hist: Histogram::new(),
            in_flight_hist: Histogram::new(),
            phase_nanos: [0; NUM_PHASES],
            shards: 1,
            shard_profiles: Vec::new(),
        }
    }

    /// Retained sample rows, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &ProfileSample> {
        self.samples.iter()
    }

    /// Windows evicted because the ring was full.
    pub fn dropped_samples(&self) -> u64 {
        self.dropped_samples
    }

    /// Cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total injection requests observed.
    pub fn injected_total(&self) -> u64 {
        self.injected_total
    }

    /// Total forwarded hops observed.
    pub fn moved_total(&self) -> u64 {
        self.moved_total
    }

    /// Largest end-of-cycle in-flight population.
    pub fn max_in_flight(&self) -> u64 {
        self.max_in_flight
    }

    /// Mean per-cycle load-imbalance factor in milli-units (1000 =
    /// perfectly balanced).
    pub fn imbalance_avg_milli(&self) -> u64 {
        if self.cycles == 0 {
            1000
        } else {
            (self.imb_sum_milli / self.cycles as u128) as u64
        }
    }

    /// Worst per-cycle load-imbalance factor in milli-units.
    pub fn imbalance_max_milli(&self) -> u64 {
        self.imb_max_milli
    }

    /// Streaming log2 histogram of per-cycle forwarded hops.
    pub fn moved_hist(&self) -> &Histogram {
        &self.moved_hist
    }

    /// Streaming log2 histogram of end-of-cycle in-flight population.
    pub fn in_flight_hist(&self) -> &Histogram {
        &self.in_flight_hist
    }

    /// Per-shard whole-run profiles, in shard order (report-only;
    /// empty after a sequential run).
    pub fn shard_profiles(&self) -> &[(usize, ShardProfile)] {
        &self.shard_profiles
    }

    /// Accumulated wall-clock nanoseconds per phase (report-only).
    pub fn phase_nanos(&self) -> &[u64; NUM_PHASES] {
        &self.phase_nanos
    }

    fn imbalance_milli(&self, queued_total: u64, queued_max: u64) -> u64 {
        (queued_max * self.classes as u64 * 1000)
            .checked_div(queued_total)
            .unwrap_or(1000)
    }

    /// Deterministic JSONL export: one line per retained window plus a
    /// trailing summary line. Bitwise identical for the same config and
    /// algorithm at any thread count.
    pub fn deterministic_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{{\"cycle\":{},\"injected\":{},\"moved\":{},\"in_flight\":{},\
                 \"queued_total\":{},\"queued_max\":{},\"occupied_total\":{},\
                 \"imbalance_milli\":{},\"cache_hits\":{},\"cache_misses\":{},\
                 \"cache_entries\":{}}}",
                s.cycle,
                s.injected,
                s.moved,
                s.in_flight,
                s.queued_total,
                s.queued_max,
                s.occupied_total,
                s.imbalance_milli,
                s.cache_hits,
                s.cache_misses,
                s.cache_entries,
            );
        }
        let _ = writeln!(
            out,
            "{{\"summary\":true,\"cycles\":{},\"injected\":{},\"moved\":{},\
             \"max_in_flight\":{},\"imbalance_avg_milli\":{},\"imbalance_max_milli\":{},\
             \"dropped_samples\":{},\"moved_log2\":{},\"in_flight_log2\":{}}}",
            self.cycles,
            self.injected_total,
            self.moved_total,
            self.max_in_flight,
            self.imbalance_avg_milli(),
            self.imbalance_max_milli(),
            self.dropped_samples,
            hist_json(&self.moved_hist),
            hist_json(&self.in_flight_hist),
        );
        out
    }

    /// Full JSONL export: the deterministic stream followed by
    /// report-only lines, each tagged `"report_only":true` so consumers
    /// (and the CI determinism diff) can strip them mechanically.
    pub fn to_jsonl(&self) -> String {
        let mut out = self.deterministic_jsonl();
        for phase in Phase::ALL {
            let _ = writeln!(
                out,
                "{{\"report_only\":true,\"phase\":\"{}\",\"nanos\":{}}}",
                phase.as_str(),
                self.phase_nanos[phase as usize],
            );
        }
        for (shard, p) in &self.shard_profiles {
            let _ = writeln!(
                out,
                "{{\"report_only\":true,\"shard\":{},\"cycles\":{},\"steal_units\":{},\
                 \"planned_reqs\":{},\"moves_self\":{},\"moves_out\":{},\"events_out\":{},\
                 \"barrier_nanos\":{},\"run_nanos\":{}}}",
                shard,
                p.cycles,
                p.steal_units,
                p.planned_reqs,
                p.moves_self,
                p.moves_out,
                p.events_out,
                p.barrier_nanos,
                p.run_nanos,
            );
        }
        out
    }

    /// Human-readable performance report: deterministic aggregates
    /// first, wall-clock sections clearly marked report-only.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== profile ({} cycles, {} shards) ===",
            self.cycles, self.shards
        );
        let _ = writeln!(
            out,
            "injected {}  moved {}  max in-flight {}",
            self.injected_total, self.moved_total, self.max_in_flight
        );
        let _ = writeln!(
            out,
            "load imbalance: avg {:.3}x  worst {:.3}x  (1.000x = ending classes evenly loaded)",
            self.imbalance_avg_milli() as f64 / 1000.0,
            self.imb_max_milli as f64 / 1000.0,
        );
        let _ = writeln!(
            out,
            "moved/cycle: p50 {}  p95 {}  max {}   in-flight: p50 {}  p95 {}  max {}",
            exp2_label(self.moved_hist.p50()),
            exp2_label(self.moved_hist.p95()),
            exp2_label(Some(self.moved_hist.max())),
            exp2_label(self.in_flight_hist.p50()),
            exp2_label(self.in_flight_hist.p95()),
            exp2_label(Some(self.in_flight_hist.max())),
        );
        let total_phase: u64 = self.phase_nanos.iter().sum();
        if total_phase > 0 {
            let _ = writeln!(out, "--- phase split (wall clock, report-only) ---");
            for phase in Phase::ALL {
                let ns = self.phase_nanos[phase as usize];
                let _ = writeln!(
                    out,
                    "  {:<14} {:>10.3} ms  {:>5.1}%",
                    phase.as_str(),
                    ns as f64 / 1e6,
                    100.0 * ns as f64 / total_phase as f64,
                );
            }
        }
        if self.shard_profiles.is_empty() {
            let _ = writeln!(out, "sequential run: no per-shard breakdown");
        } else {
            let _ = writeln!(out, "--- per-shard split (report-only) ---");
            let _ = writeln!(
                out,
                "  shard  steal_units  planned  moves_self  moves_out  events   barrier%"
            );
            for (shard, p) in &self.shard_profiles {
                let _ = writeln!(
                    out,
                    "  {:>5}  {:>11}  {:>7}  {:>10}  {:>9}  {:>6}  {:>8.1}%",
                    shard,
                    p.steal_units,
                    p.planned_reqs,
                    p.moves_self,
                    p.moves_out,
                    p.events_out,
                    100.0 * p.barrier_fraction(),
                );
            }
        }
        out
    }
}

impl ProfilerSink for ProfileCollector {
    #[inline]
    fn wants_cache(&self, cycle: u64) -> bool {
        (cycle + 1).is_multiple_of(self.interval)
    }

    fn cycle_sample(&mut self, sample: &ProfSample<'_>) {
        self.cycles = self.cycles.max(sample.cycle + 1);
        self.win_injected += sample.injected;
        self.win_moved += sample.moved;
        self.injected_total += sample.injected;
        self.moved_total += sample.moved;
        self.max_in_flight = self.max_in_flight.max(sample.in_flight);
        self.moved_hist.record(log2_bucket(sample.moved));
        self.in_flight_hist.record(log2_bucket(sample.in_flight));
        let queued_total: u64 = sample.class_queued.iter().sum();
        let queued_max = sample.class_queued.iter().copied().max().unwrap_or(0);
        let imb = self.imbalance_milli(queued_total, queued_max);
        self.imb_sum_milli += imb as u128;
        self.imb_max_milli = self.imb_max_milli.max(imb);
        if (sample.cycle + 1).is_multiple_of(self.interval) {
            let cache = sample.cache.unwrap_or(self.last_cache);
            let row = ProfileSample {
                cycle: sample.cycle,
                injected: self.win_injected,
                moved: self.win_moved,
                in_flight: sample.in_flight,
                queued_total,
                queued_max,
                occupied_total: sample.class_occupied.iter().sum(),
                imbalance_milli: imb,
                cache_hits: cache.hits - self.last_cache.hits,
                cache_misses: cache.misses - self.last_cache.misses,
                cache_entries: cache.entries,
            };
            self.last_cache = cache;
            self.win_injected = 0;
            self.win_moved = 0;
            if self.samples.len() == self.ring_capacity {
                self.samples.pop_front();
                self.dropped_samples += 1;
            }
            self.samples.push_back(row);
        }
    }

    fn phase_time(&mut self, phase: Phase, nanos: u64) {
        self.phase_nanos[phase as usize] += nanos;
    }

    fn shard_profile(&mut self, shard: usize, profile: &ShardProfile) {
        self.shard_profiles.push((shard, *profile));
    }

    fn finish_run(&mut self, cycles: u64, shards: usize) {
        self.cycles = cycles;
        self.shards = shards;
        self.shard_profiles.sort_by_key(|(s, _)| *s);
    }
}

/// Render a log2 histogram's non-empty prefix as a JSON array of bucket
/// counts (trailing zeros trimmed, `[]` when empty).
fn hist_json(h: &Histogram) -> String {
    let buckets = h.buckets();
    let last = buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
    let mut out = String::from("[");
    for (i, b) in buckets[..last].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push(']');
    out
}

/// Label a log2-bucket percentile as the bucket's value range lower
/// bound (`0` stays `0`; bucket `i >= 1` is `2^(i-1)`).
fn exp2_label(p: Option<u64>) -> u64 {
    match p {
        None | Some(0) => 0,
        Some(i) => 1u64 << (i - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample<'a>(
        cycle: u64,
        injected: u64,
        moved: u64,
        in_flight: u64,
        cq: &'a [u64],
        co: &'a [u64],
        cache: Option<CacheStats>,
    ) -> ProfSample<'a> {
        ProfSample {
            cycle,
            injected,
            moved,
            in_flight,
            class_queued: cq,
            class_occupied: co,
            cache,
        }
    }

    #[test]
    fn null_profiler_is_disabled() {
        assert!(!NullProfiler.enabled());
        assert!(!NullProfiler.wants_cache(0));
        // The forwarding impl preserves the guard.
        let mut null = NullProfiler;
        let fwd: &mut NullProfiler = &mut null;
        assert!(!fwd.enabled());
    }

    #[test]
    fn log2_buckets_partition_powers_of_two() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(u64::MAX), 64);
    }

    #[test]
    fn windows_accumulate_and_close_on_interval() {
        let mut c = ProfileCollector::new(4, 2);
        let cq = [3, 1, 0, 0];
        let co = [2, 1, 0, 0];
        assert!(!c.wants_cache(0));
        assert!(c.wants_cache(1));
        c.cycle_sample(&sample(0, 5, 2, 5, &cq, &co, None));
        assert_eq!(c.samples().count(), 0, "window still open");
        let cache = CacheStats {
            hits: 7,
            misses: 3,
            entries: 2,
        };
        c.cycle_sample(&sample(1, 1, 4, 6, &cq, &co, Some(cache)));
        let rows: Vec<_> = c.samples().copied().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cycle, 1);
        assert_eq!(rows[0].injected, 6);
        assert_eq!(rows[0].moved, 6);
        assert_eq!(rows[0].in_flight, 6);
        assert_eq!(rows[0].queued_total, 4);
        assert_eq!(rows[0].queued_max, 3);
        assert_eq!(rows[0].occupied_total, 3);
        // 3 * 4 classes * 1000 / 4 queued = 3000 milli.
        assert_eq!(rows[0].imbalance_milli, 3000);
        assert_eq!(rows[0].cache_hits, 7);
        assert_eq!(rows[0].cache_misses, 3);
        assert_eq!(rows[0].cache_entries, 2);
        assert_eq!(c.injected_total(), 6);
        assert_eq!(c.moved_total(), 6);
        assert_eq!(c.max_in_flight(), 6);
    }

    #[test]
    fn empty_network_counts_as_balanced() {
        let mut c = ProfileCollector::new(8, 1);
        let cq = [0u64; 8];
        c.cycle_sample(&sample(0, 0, 0, 0, &cq, &cq, None));
        assert_eq!(c.imbalance_avg_milli(), 1000);
        assert_eq!(c.imbalance_max_milli(), 1000);
    }

    #[test]
    fn ring_bounds_memory() {
        let mut c = ProfileCollector::new(2, 1);
        c.ring_capacity = 3;
        let cq = [1, 0];
        for cycle in 0..5 {
            c.cycle_sample(&sample(cycle, 1, 1, 1, &cq, &cq, None));
        }
        assert_eq!(c.samples().count(), 3);
        assert_eq!(c.dropped_samples(), 2);
        assert_eq!(c.samples().next().unwrap().cycle, 2, "oldest evicted first");
    }

    #[test]
    fn deterministic_jsonl_excludes_wall_clock() {
        let mut c = ProfileCollector::new(2, 1);
        let cq = [2, 2];
        c.cycle_sample(&sample(0, 4, 3, 4, &cq, &cq, None));
        c.phase_time(Phase::Forwarding, 123_456);
        c.shard_profile(
            1,
            &ShardProfile {
                cycles: 1,
                barrier_nanos: 999,
                run_nanos: 1000,
                ..ShardProfile::default()
            },
        );
        let det = c.deterministic_jsonl();
        assert!(
            !det.contains("nanos"),
            "deterministic stream leaked wall clock: {det}"
        );
        assert!(!det.contains("report_only"));
        let full = c.to_jsonl();
        assert!(
            full.starts_with(&det),
            "full export must prefix the deterministic stream"
        );
        assert!(full.contains("\"report_only\":true,\"phase\":\"forwarding\",\"nanos\":123456"));
        assert!(full.contains("\"report_only\":true,\"shard\":1"));
    }

    #[test]
    fn report_renders_shard_table_and_phase_split() {
        let mut c = ProfileCollector::new(2, 1);
        let cq = [1, 1];
        c.cycle_sample(&sample(0, 2, 2, 2, &cq, &cq, None));
        c.phase_time(Phase::Planning, 1_000_000);
        c.shard_profile(
            0,
            &ShardProfile {
                cycles: 1,
                steal_units: 4,
                planned_reqs: 9,
                barrier_nanos: 250,
                run_nanos: 1000,
                ..ShardProfile::default()
            },
        );
        c.finish_run(1, 2);
        let report = c.report();
        assert!(report.contains("phase split (wall clock, report-only)"));
        assert!(report.contains("per-shard split (report-only)"));
        assert!(
            report.contains("25.0%"),
            "barrier fraction rendered: {report}"
        );
        let seq = ProfileCollector::new(2, 1);
        assert!(seq
            .report()
            .contains("sequential run: no per-shard breakdown"));
    }

    #[test]
    fn shard_profiles_sorted_on_finish() {
        let mut c = ProfileCollector::new(2, 1);
        c.shard_profile(2, &ShardProfile::default());
        c.shard_profile(0, &ShardProfile::default());
        c.shard_profile(1, &ShardProfile::default());
        c.finish_run(10, 3);
        let order: Vec<usize> = c.shard_profiles().iter().map(|(s, _)| *s).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(c.cycles(), 10);
    }
}
