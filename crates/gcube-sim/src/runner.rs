//! Parameter sweeps, parallelised with scoped threads.
//!
//! The paper's figures sweep the network dimension for several moduli and
//! fault counts; each point is an independent simulation, so the sweep
//! parallelises embarrassingly across a `crossbeam` scope with results
//! gathered behind a `parking_lot` mutex.

use parking_lot::Mutex;

use crate::config::SimConfig;
use crate::engine::Simulator;
use crate::metrics::{ChurnReport, Metrics};
use crate::strategy::RoutingAlgorithm;

/// One point of a sweep: the configuration and its measured metrics.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Configuration simulated.
    pub config: SimConfig,
    /// Strategy name.
    pub algorithm: &'static str,
    /// Measured metrics.
    pub metrics: Metrics,
}

/// Run every `(config, algorithm)` pair, `threads`-wide, preserving input
/// order in the output.
pub fn run_sweep(
    configs: &[SimConfig],
    algorithm: &dyn RoutingAlgorithm,
    threads: usize,
) -> Vec<SweepPoint> {
    let threads = threads.max(1);
    let results: Mutex<Vec<Option<SweepPoint>>> = Mutex::new(vec![None; configs.len()]);
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|s| {
        for _ in 0..threads.min(configs.len().max(1)) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let sim = Simulator::new(configs[i].clone(), algorithm);
                let metrics = sim.session().run().metrics;
                results.lock()[i] = Some(SweepPoint {
                    config: configs[i].clone(),
                    algorithm: algorithm.name(),
                    metrics,
                });
            });
        }
    })
    .expect("sweep worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|p| p.expect("every sweep point filled"))
        .collect()
}

/// One point of a churn sweep: the configuration and its full report
/// (metrics plus the degradation time series).
#[derive(Clone, Debug)]
pub struct ChurnPoint {
    /// Configuration simulated.
    pub config: SimConfig,
    /// Strategy name.
    pub algorithm: &'static str,
    /// Full churn report.
    pub report: ChurnReport,
}

/// Like [`run_sweep`], but keeping each run's [`ChurnReport`] so callers
/// can plot degradation-under-churn curves. Input order is preserved.
pub fn run_churn_sweep(
    configs: &[SimConfig],
    algorithm: &dyn RoutingAlgorithm,
    threads: usize,
) -> Vec<ChurnPoint> {
    let threads = threads.max(1);
    let results: Mutex<Vec<Option<ChurnPoint>>> = Mutex::new(vec![None; configs.len()]);
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|s| {
        for _ in 0..threads.min(configs.len().max(1)) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let sim = Simulator::new(configs[i].clone(), algorithm);
                let report = sim.session().run();
                results.lock()[i] = Some(ChurnPoint {
                    config: configs[i].clone(),
                    algorithm: algorithm.name(),
                    report,
                });
            });
        }
    })
    .expect("churn sweep worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|p| p.expect("every churn point filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::FaultFreeGcr;

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let configs: Vec<SimConfig> = [5u32, 6, 7]
            .iter()
            .map(|&n| {
                SimConfig::new(n, 2)
                    .with_cycles(100, 1_000, 10)
                    .with_rate(0.01)
            })
            .collect();
        let parallel = run_sweep(&configs, &FaultFreeGcr, 4);
        assert_eq!(parallel.len(), 3);
        for (i, p) in parallel.iter().enumerate() {
            assert_eq!(p.config.n, configs[i].n);
            assert_eq!(p.algorithm, "FFGCR");
            // Each point must equal an independent serial run (determinism
            // across thread schedules).
            let serial = Simulator::new(configs[i].clone(), &FaultFreeGcr)
                .session()
                .run()
                .metrics;
            assert_eq!(p.metrics, serial);
        }
    }

    #[test]
    fn empty_sweep() {
        let out = run_sweep(&[], &FaultFreeGcr, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn churn_sweep_matches_serial_reports() {
        use crate::config::KnowledgeModel;
        use crate::injection::{CategoryMix, FaultKind, FaultSchedule};
        use crate::strategy::FaultTolerantGcr;
        let schedule = FaultSchedule::Bernoulli {
            rate: 0.02,
            kind: FaultKind::Transient { repair_after: 50 },
            mix: CategoryMix::default(),
            node_fraction: 0.5,
        };
        let configs: Vec<SimConfig> = [5u32, 6]
            .iter()
            .map(|&n| {
                SimConfig::new(n, 2)
                    .with_cycles(150, 1_500, 0)
                    .with_rate(0.02)
                    .with_schedule(schedule.clone())
                    .with_knowledge(KnowledgeModel::PaperDelay)
            })
            .collect();
        let parallel = run_churn_sweep(&configs, &FaultTolerantGcr, 4);
        assert_eq!(parallel.len(), 2);
        for (i, p) in parallel.iter().enumerate() {
            let serial = Simulator::new(configs[i].clone(), &FaultTolerantGcr)
                .session()
                .run();
            assert_eq!(p.report, serial, "thread schedule must not change results");
        }
    }
}
