//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API, vendored because the build environment has no registry access.
//!
//! Only the surface this workspace actually uses is provided: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen_range` (half-open and inclusive integer ranges), `gen_bool`, and
//! `next_u64`/`next_u32`. The generator is xoshiro256** with a SplitMix64
//! seed expander — deterministic across platforms and runs, which is all
//! the simulator requires (statistical quality far exceeds the needs of a
//! Bernoulli traffic source).
//!
//! Not a cryptographic RNG; never use for secrets.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, exactly like rand's `gen_bool`.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Ranges a value can be uniformly drawn from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening-multiply map of a raw `u64` onto `[0, width)` — unbiased enough
/// for simulation workloads and branch-free (Lemire's method without the
/// rejection step).
#[inline]
fn scale(raw: u64, width: u64) -> u64 {
    ((u128::from(raw) * u128::from(width)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end - self.start) as u64;
                self.start + scale(rng.next_u64(), width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + scale(rng.next_u64(), width + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named RNGs (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    ///
    /// (Upstream `StdRng` is ChaCha12; the exact stream differs, but every
    /// consumer in this workspace only relies on determinism per seed.)
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state words, for checkpointing a stream
        /// mid-run. Feeding the value back through
        /// [`StdRng::from_state`] resumes the stream exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from [`StdRng::state`]. The all-zero state
        /// is a fixed point of xoshiro256** and can never be produced by
        /// seeding or stepping, so it is rejected as the seeding path's
        /// fallback state instead.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return StdRng {
                    s: [0x9e37_79b9_7f4a_7c15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "restored stream must continue bitwise");
        // The degenerate all-zero state is replaced, not accepted.
        let mut z = StdRng::from_state([0, 0, 0, 0]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0u32..=5);
            assert!(w <= 5);
            let u = r.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw must hit all buckets");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!(
            (20_000..30_000).contains(&hits),
            "p=0.25 gave {hits}/100000"
        );
    }
}
