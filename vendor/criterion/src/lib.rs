//! Offline drop-in subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark API,
//! vendored because the build environment has no registry access.
//!
//! Implements the `harness = false` entry points this workspace's benches
//! use — [`criterion_group!`], [`criterion_main!`], benchmark groups,
//! [`BenchmarkId`], `Bencher::iter` and [`black_box`] — with a simple
//! measurement loop: warm up briefly, then time batches until a fixed
//! wall-clock budget is spent and report the mean iteration time. No
//! statistics, plots, or baselines; output is one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    /// Per-benchmark measurement budget.
    measurement_time: Duration,
    /// Accepted for API compatibility; the timing loop is budget-driven.
    #[allow(dead_code)]
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(300),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Upstream parses CLI args here (filters, baselines); this subset
    /// accepts and ignores them.
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Shrink or grow the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), self.measurement_time, f);
        self
    }
}

/// A named set of benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; this subset sizes runs by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmark `f` with `input` threaded through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.0, self.measurement_time, |b| f(b, input));
        self
    }

    /// Benchmark a closure taking only the bencher.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.measurement_time, f);
        self
    }

    /// End the group (upstream finalizes reports here).
    pub fn finish(self) {}
}

/// A benchmark identifier (subset of `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing loop handle (subset of `criterion::Bencher`).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called in a loop; the measured routine's result is
    /// black-boxed so the optimizer cannot delete it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, budget: Duration, mut f: F) {
    // Calibration pass: one iteration, to size batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let batch = (budget.as_nanos() / 10 / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    while total < budget {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += batch;
    }
    let mean = total.as_nanos() as f64 / iters as f64;
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench {label:<48} {:>12} iters  mean {}",
        iters,
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s ", ns / 1_000_000_000.0)
    }
}

/// Define a function running a list of benchmark functions (subset of
/// upstream's `criterion_group!`; the `name = ..; config = ..` form is also
/// accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut hits = 0u64;
        {
            let mut g = c.benchmark_group("smoke");
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &x| {
                b.iter(|| {
                    hits += 1;
                    black_box(x + 1)
                })
            });
            g.finish();
        }
        assert!(hits > 0, "the measured closure must actually run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter("n4_m2").0, "n4_m2");
    }
}
