//! Collection strategies (subset of `proptest::collection`).

use std::collections::BTreeSet;
use std::ops::Range;

use crate::{Strategy, TestRng};

/// Sizes a collection strategy can take: a fixed size or a half-open range.
pub trait SizeRange {
    /// Draw a target size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty collection size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
///
/// If the element domain is smaller than the requested size, the set
/// saturates at whatever distinct values a bounded number of draws found
/// (upstream would reject; no caller here distinguishes the two).
pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: SizeRange,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: SizeRange,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 20 + 64 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
