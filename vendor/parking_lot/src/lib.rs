//! Offline drop-in subset of the
//! [`parking_lot`](https://crates.io/crates/parking_lot) API, vendored
//! because the build environment has no registry access.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning
//! signatures (`lock()` returns the guard directly). A thread that panicked
//! while holding the lock does not poison it — exactly `parking_lot`'s
//! behaviour.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive (subset of `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
