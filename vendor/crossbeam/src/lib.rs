//! Offline drop-in subset of the
//! [`crossbeam`](https://crates.io/crates/crossbeam) scoped-thread API,
//! vendored because the build environment has no registry access.
//!
//! [`scope`] delegates to `std::thread::scope` (stable since 1.63), which
//! provides the same guarantee crossbeam pioneered: spawned threads may
//! borrow from the enclosing stack frame and are joined before `scope`
//! returns. One behavioural difference: if a worker panics, the panic is
//! resumed on the scoping thread instead of being returned as `Err`, so the
//! `Result` returned here is always `Ok`. Callers that `.expect()` the
//! result (the only pattern in this workspace) observe identical outcomes:
//! a panic either way.

use std::any::Any;
use std::thread;

/// A handle for spawning scoped threads (subset of
/// `crossbeam::thread::Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope handle again,
    /// like crossbeam's, so workers can spawn further workers.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle))
    }
}

/// Create a scope for spawning borrowing threads; all are joined before the
/// call returns (subset of `crossbeam::scope`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias, matching the upstream layout.
pub mod thread_mod {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn workers_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicU64::new(0);
        scope(|s| {
            let sum = &sum;
            for chunk in data.chunks(2) {
                s.spawn(move |_| {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let hits = AtomicU64::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                hits.fetch_add(1, Ordering::Relaxed);
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
